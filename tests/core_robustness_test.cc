// Robustness: failure injection (transient disk stalls), the §2.6
// multiple-servers configuration, and overlapping cross-layer faults (a
// member fail-stop landing inside a network burst-loss window).

#include <gtest/gtest.h>

#include "src/base/bytes.h"
#include "src/core/player.h"
#include "src/core/testbed.h"
#include "src/fault/fault.h"
#include "src/media/media_file.h"
#include "src/net/link.h"
#include "src/net/nps.h"

namespace cras {
namespace {

using crbase::Milliseconds;
using crbase::Seconds;

TEST(FaultInjection, TransientDiskStallDegradesThenRecovers) {
  Testbed bed;
  bed.StartServers();
  auto file = crmedia::WriteMpeg1File(bed.fs, "movie", Seconds(20));
  ASSERT_TRUE(file.ok());
  PlayerStats stats;
  PlayerOptions options;
  options.play_length = Seconds(16);
  crsim::Task player = SpawnCrasPlayer(bed.kernel, bed.cras_server, *file, options, &stats);

  // Let the stream reach steady state, then stall the drive: the next 3
  // requests each take an extra 800 ms (a long recalibration).
  bed.engine().RunFor(Seconds(5));
  bed.device.InjectTransientFault(Milliseconds(800), 3);
  bed.engine().RunFor(Seconds(17));

  EXPECT_EQ(bed.device.faults_applied(), 3);
  // The stall must be *visible*: deadline notifications fired and some
  // frames were late or lost...
  EXPECT_GT(bed.cras_server.stats().deadline_misses, 0);
  const std::int64_t disturbed =
      stats.frames_missed +
      static_cast<std::int64_t>(std::count_if(stats.frames.begin(), stats.frames.end(),
                                              [](const FrameRecord& f) {
                                                return f.delay() > Milliseconds(10);
                                              }));
  EXPECT_GT(disturbed, 0);
  // ...but bounded: the server recovers instead of collapsing. The stall
  // window is ~2.4 s of a 16 s playback; everything outside it plays.
  EXPECT_LT(disturbed, 150);
  EXPECT_GT(stats.frames_played, 330);

  // Frames in the final 4 seconds are all clean again.
  for (const FrameRecord& f : stats.frames) {
    if (f.due_at > stats.frames.front().due_at + Seconds(12)) {
      EXPECT_LE(f.delay(), Milliseconds(5)) << "frame " << f.frame << " still late after recovery";
    }
  }
}

TEST(FaultInjection, UnfaultedRunHasNoMisses) {
  // Control run for the test above: identical except no fault.
  Testbed bed;
  bed.StartServers();
  auto file = crmedia::WriteMpeg1File(bed.fs, "movie", Seconds(20));
  PlayerStats stats;
  PlayerOptions options;
  options.play_length = Seconds(16);
  crsim::Task player = SpawnCrasPlayer(bed.kernel, bed.cras_server, *file, options, &stats);
  bed.engine().RunFor(Seconds(22));
  EXPECT_EQ(bed.cras_server.stats().deadline_misses, 0);
  EXPECT_EQ(stats.frames_missed, 0);
}

TEST(MultipleServers, TwoCrasServersShareOneDisk) {
  // §2.6: "allows the system to execute multiple CRAS's simultaneously."
  // Two independent servers share the driver's real-time queue. Each admits
  // against its own budget, so the combination is only safe if their total
  // load fits — here each runs well under half the disk.
  Testbed bed;
  bed.StartServers();
  CrasServer second(bed.kernel, bed.driver, bed.fs);
  second.Start();

  auto file_a = crmedia::WriteMpeg1File(bed.fs, "a", Seconds(10));
  auto file_b = crmedia::WriteMpeg1File(bed.fs, "b", Seconds(10));
  PlayerStats stats_a;
  PlayerStats stats_b;
  PlayerOptions options;
  options.play_length = Seconds(8);
  crsim::Task player_a = SpawnCrasPlayer(bed.kernel, bed.cras_server, *file_a, options, &stats_a);
  options.start_delay = Milliseconds(137);
  crsim::Task player_b = SpawnCrasPlayer(bed.kernel, second, *file_b, options, &stats_b);
  bed.engine().RunFor(Seconds(13));

  EXPECT_FALSE(stats_a.open_rejected);
  EXPECT_FALSE(stats_b.open_rejected);
  EXPECT_EQ(stats_a.frames_missed, 0);
  EXPECT_EQ(stats_b.frames_missed, 0);
  EXPECT_LE(stats_a.max_delay(), Milliseconds(2));
  EXPECT_LE(stats_b.max_delay(), Milliseconds(2));
  EXPECT_GT(bed.cras_server.stats().bytes_read, 0);
  EXPECT_GT(second.stats().bytes_read, 0);
  // Both wired their own base memory.
  EXPECT_GE(bed.kernel.wired_bytes(), 2 * 250 * 1024);
}

TEST(MultipleServers, UncoordinatedAdmissionCanOversubscribe) {
  // The flip side the paper leaves implicit: per-server admission tests do
  // not know about each other. Two servers each admitting a near-capacity
  // load oversubscribe the disk and both degrade — a real limitation of
  // the multiple-servers configuration, demonstrated rather than hidden.
  Testbed bed;
  bed.StartServers();
  CrasServer second(bed.kernel, bed.driver, bed.fs);
  second.Start();

  std::vector<crmedia::MediaFile> files;
  for (int i = 0; i < 20; ++i) {
    files.push_back(*crmedia::WriteMpeg1File(bed.fs, "m" + std::to_string(i), Seconds(8)));
  }
  std::vector<std::unique_ptr<PlayerStats>> stats;
  std::vector<crsim::Task> players;
  PlayerOptions options;
  options.play_length = Seconds(6);
  for (int i = 0; i < 20; ++i) {
    options.start_delay = Milliseconds(73) * i;
    stats.push_back(std::make_unique<PlayerStats>());
    CrasServer& server = (i % 2 == 0) ? bed.cras_server : second;
    players.push_back(SpawnCrasPlayer(bed.kernel, server, files[static_cast<std::size_t>(i)],
                                      options, stats.back().get()));
  }
  bed.engine().RunFor(Seconds(12));

  int admitted = 0;
  std::int64_t missed = 0;
  for (const auto& s : stats) {
    if (!s->open_rejected) {
      ++admitted;
      missed += s->frames_missed;
    }
  }
  // Each server alone would admit 14; together they admit 20 (10 each) and
  // the disk cannot carry it.
  EXPECT_EQ(admitted, 20);
  EXPECT_GT(missed + bed.cras_server.stats().deadline_misses + second.stats().deadline_misses,
            0)
      << "oversubscription should be observable";
}

TEST(OverlappingFaults, FailStopDuringBurstLossServesOrShedsNeverWedges) {
  // Two layers fail at once: the wire enters a Gilbert-Elliott burst-loss
  // regime at 3 s, and while the bursts are still running a parity member
  // fail-stops at 4 s. The NAK repair path and the degraded-read
  // reconstruction path are both on the same clock; the stream must either
  // keep playing (repair + reconstruction) or be shed — never wedge, never
  // miss silently after both faults clear.
  VolumeTestbedOptions options;
  options.volume.disks = 4;
  options.volume.parity = true;
  VolumeTestbed bed(options);
  bed.StartServers();
  const auto movie = *crmedia::WriteMpeg1File(bed.fs, "movie", Seconds(10));

  crrt::Kernel client_host(bed.engine(), crrt::Kernel::Options{});
  crnet::Link forward(bed.engine());
  crnet::Link reverse(bed.engine());
  crnet::NpsReceiver receiver(client_host);
  crnet::NpsSender sender(bed.kernel, bed.cras_server, forward, receiver);
  receiver.ConnectReverse(reverse, sender);

  crfault::FaultPlan plan;
  plan.LinkBurstLoss(Seconds(3), /*p_enter_bad=*/0.05, /*p_exit_bad=*/0.3,
                     /*loss_bad=*/0.9)
      .FailStop(Seconds(4), 1)
      .Recover(Seconds(6), 1)
      .LinkRecover(Seconds(7));
  crfault::FaultInjector injector(bed.engine(), &bed.volume, {&forward}, plan);
  injector.AttachObs(&bed.hub);
  injector.Arm();

  cras::SessionId session = cras::kInvalidSession;
  std::int64_t frames_ok = 0;
  std::int64_t frames_missing = 0;
  crsim::Task opener = bed.kernel.Spawn(
      "qtserver", crrt::kPriorityClient, [&](crrt::ThreadContext&) -> crsim::Task {
        OpenParams params;
        params.inode = movie.inode;
        params.index = movie.index;
        auto opened = co_await bed.cras_server.Open(std::move(params));
        CRAS_CHECK(opened.ok());
        session = *opened;
        (void)co_await bed.cras_server.StartStream(
            session, bed.cras_server.SuggestedInitialDelay());
      });
  bed.engine().RunFor(Milliseconds(50));
  ASSERT_NE(session, kInvalidSession);
  crsim::Task sender_task = sender.Start(session, &movie.index);
  crsim::Task player = client_host.Spawn(
      "qtclient", crrt::kPriorityClient, [&](crrt::ThreadContext& ctx) -> crsim::Task {
        const crbase::Duration delay =
            bed.cras_server.SuggestedInitialDelay() + Milliseconds(200);
        receiver.clock().Start(delay);
        co_await ctx.Sleep(delay);
        for (const crmedia::Chunk& chunk : movie.index.chunks()) {
          while (receiver.clock().Now() < chunk.timestamp) {
            co_await ctx.Sleep(Milliseconds(2));
          }
          if (receiver.Get(chunk.timestamp).has_value()) {
            ++frames_ok;
          } else {
            ++frames_missing;
          }
        }
      });
  bed.engine().RunFor(Seconds(16));

  ASSERT_EQ(injector.events_fired(), 4);
  // The faults genuinely overlapped: the member went down while the burst
  // regime was active (3 s..7 s vs 4 s..6 s).
  EXPECT_EQ(bed.volume.member_state(1), crvol::MemberState::kHealthy)
      << "recovery landed";
  if (bed.cras_server.WasShed(session)) {
    // Admission decided the degraded volume could not carry the stream:
    // a legitimate terminal state, visible, never silent.
    EXPECT_GT(bed.cras_server.stats().streams_shed, 0);
  } else {
    // Carried through both faults: every frame accounted for, and losses
    // confined to the disturbance — the tail after recovery plays clean.
    EXPECT_EQ(frames_ok + frames_missing,
              static_cast<std::int64_t>(movie.index.count()));
    EXPECT_GT(frames_ok, static_cast<std::int64_t>(movie.index.count()) / 2);
    EXPECT_LT(frames_missing, static_cast<std::int64_t>(movie.index.count()) / 4);
  }
  // The repair machinery really ran against the burst.
  EXPECT_GT(forward.stats().wire_drops, 0);
  EXPECT_GT(receiver.stats().naks_sent, 0);
  // Both injected faults are on the record for the autopsy.
  bool saw_burst = false;
  bool saw_fail_stop = false;
  for (const crobs::FlightEvent& event : bed.hub.flight().events()) {
    if (event.kind == crobs::FlightEventKind::kFaultInjected) {
      saw_burst |= event.detail == "link_burst_loss";
      saw_fail_stop |= event.detail == "fail_stop";
    }
  }
  EXPECT_TRUE(saw_burst);
  EXPECT_TRUE(saw_fail_stop);
}

}  // namespace
}  // namespace cras
