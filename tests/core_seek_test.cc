// Mid-playback crs_seek behaviour: forward, backward, and edge positions.

#include <gtest/gtest.h>

#include "src/core/cras.h"
#include "src/core/testbed.h"
#include "src/media/media_file.h"

namespace cras {
namespace {

using crbase::Milliseconds;
using crbase::Seconds;

struct SeekRig {
  Testbed bed;
  crmedia::MediaFile file;
  SessionId id = kInvalidSession;

  SeekRig() {
    bed.StartServers();
    file = *crmedia::WriteMpeg1File(bed.fs, "movie", Seconds(60));
  }

  void Run(std::function<crsim::Task(crrt::ThreadContext&, SeekRig&)> fn,
           crbase::Duration run_for) {
    crsim::Task t = bed.kernel.Spawn(
        "seek-client", crrt::kPriorityClient,
        [this, fn](crrt::ThreadContext& ctx) -> crsim::Task {
          OpenParams params;
          params.inode = file.inode;
          params.index = file.index;
          auto opened = co_await bed.cras_server.Open(std::move(params));
          CRAS_CHECK(opened.ok());
          id = *opened;
          (void)co_await bed.cras_server.StartStream(
              id, bed.cras_server.SuggestedInitialDelay());
          co_await fn(ctx, *this);
        });
    bed.engine().RunFor(run_for);
  }

  // Polls crs_get at the session's logical now for up to `budget`.
  crsim::Task WaitForFrame(crrt::ThreadContext& ctx, crbase::Duration budget, bool* got,
                           crbase::Time* at_logical) {
    const crbase::Time give_up = ctx.Now() + budget;
    *got = false;
    while (ctx.Now() < give_up) {
      const crbase::Time logical = bed.cras_server.LogicalNow(id);
      if (logical >= 0 && bed.cras_server.Get(id, logical).has_value()) {
        *got = true;
        *at_logical = logical;
        co_return;
      }
      co_await ctx.Sleep(Milliseconds(5));
    }
  }
};

TEST(CrasSeek, ForwardSeekResumesAtNewPosition) {
  SeekRig rig;
  bool got = false;
  crbase::Time at_logical = 0;
  rig.Run(
      [&](crrt::ThreadContext& ctx, SeekRig& r) -> crsim::Task {
        co_await ctx.Sleep(Seconds(3));  // play a while
        CRAS_CHECK_OK(co_await r.bed.cras_server.Seek(r.id, Seconds(40)));
        // Seek repositions the clock and flushes the buffer; data for the
        // new position arrives within the usual pipeline depth.
        co_await r.WaitForFrame(ctx, Seconds(2), &got, &at_logical);
      },
      Seconds(8));
  EXPECT_TRUE(got);
  EXPECT_GE(at_logical, Seconds(40));
  EXPECT_LT(at_logical, Seconds(43));
}

TEST(CrasSeek, BackwardSeekReplays) {
  SeekRig rig;
  bool got = false;
  crbase::Time at_logical = 0;
  rig.Run(
      [&](crrt::ThreadContext& ctx, SeekRig& r) -> crsim::Task {
        co_await ctx.Sleep(Seconds(5));  // logical ~4 s
        CRAS_CHECK_OK(co_await r.bed.cras_server.Seek(r.id, Seconds(1)));
        co_await r.WaitForFrame(ctx, Seconds(2), &got, &at_logical);
      },
      Seconds(10));
  EXPECT_TRUE(got);
  EXPECT_GE(at_logical, Seconds(1));
  EXPECT_LT(at_logical, Seconds(4));
}

TEST(CrasSeek, SeekToNegativeClampsToStart) {
  SeekRig rig;
  crbase::Status status;
  rig.Run(
      [&](crrt::ThreadContext&, SeekRig& r) -> crsim::Task {
        status = co_await r.bed.cras_server.Seek(r.id, -Seconds(5));
      },
      Seconds(1));
  // Clamped to the first chunk; the call itself succeeds.
  EXPECT_TRUE(status.ok());
}

TEST(CrasSeek, RepeatedSeeksDontLeakBufferSpace) {
  SeekRig rig;
  rig.Run(
      [&](crrt::ThreadContext& ctx, SeekRig& r) -> crsim::Task {
        crbase::Rng rng(7);
        for (int i = 0; i < 10; ++i) {
          co_await ctx.Sleep(Milliseconds(700));
          const crbase::Time target =
              static_cast<crbase::Time>(rng.NextBelow(50)) * Seconds(1);
          CRAS_CHECK_OK(co_await r.bed.cras_server.Seek(r.id, target));
        }
      },
      Seconds(12));
  const TimeDrivenBufferStats* stats = rig.bed.cras_server.GetBufferStats(rig.id);
  ASSERT_NE(stats, nullptr);
  // The buffer never exceeded its reservation despite the churn.
  EXPECT_LE(stats->max_resident_bytes, rig.bed.cras_server.buffer_bytes_reserved());
  EXPECT_EQ(rig.bed.cras_server.stats().deadline_misses, 0);
}

}  // namespace
}  // namespace cras
