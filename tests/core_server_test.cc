// CRAS server integration tests: session lifecycle, constant-rate
// retrieval, admission enforcement, dynamic QoS, and robustness.

#include "src/core/cras.h"

#include <gtest/gtest.h>

#include "src/base/bytes.h"
#include "src/core/player.h"
#include "src/core/testbed.h"
#include "src/media/media_file.h"

namespace cras {
namespace {

using crbase::kMiB;
using crbase::Milliseconds;
using crbase::Seconds;

crmedia::MediaFile MakeMpeg1(Testbed& bed, const std::string& name, crbase::Duration length) {
  auto file = crmedia::WriteMpeg1File(bed.fs, name, length);
  CRAS_CHECK(file.ok()) << file.status().ToString();
  return *file;
}

// Opens and starts a stream directly (without a player), returning its id.
crsim::Task OpenAndStart(Testbed& bed, const crmedia::MediaFile& file, SessionId* out,
                         crbase::Status* status) {
  return bed.kernel.Spawn("opener", crrt::kPriorityClient,
                          [&bed, &file, out, status](crrt::ThreadContext&) -> crsim::Task {
                            OpenParams params;
                            params.inode = file.inode;
                            params.index = file.index;
                            auto opened = co_await bed.cras_server.Open(std::move(params));
                            if (!opened.ok()) {
                              *status = opened.status();
                              co_return;
                            }
                            *out = *opened;
                            *status = co_await bed.cras_server.StartStream(
                                *out, bed.cras_server.SuggestedInitialDelay());
                          });
}

TEST(CrasServer, SingleStreamPlaysWithZeroDelay) {
  Testbed bed;
  bed.StartServers();
  crmedia::MediaFile file = MakeMpeg1(bed, "movie", Seconds(12));
  PlayerStats stats;
  PlayerOptions options;
  options.play_length = Seconds(10);
  crsim::Task player = SpawnCrasPlayer(bed.kernel, bed.cras_server, file, options, &stats);
  bed.engine().RunFor(Seconds(15));
  EXPECT_FALSE(stats.open_rejected);
  EXPECT_EQ(stats.frames_missed, 0);
  // 30 fps for 10 s (inclusive of frame at t=10).
  EXPECT_GE(stats.frames_played, 300);
  // Constant-rate retrieval: every frame ready by its deadline.
  EXPECT_LE(stats.max_delay(), Milliseconds(1));
  EXPECT_EQ(bed.cras_server.stats().deadline_misses, 0);
}

TEST(CrasServer, SessionLifecycleAndAccounting) {
  Testbed bed;
  bed.StartServers();
  crmedia::MediaFile file = MakeMpeg1(bed, "movie", Seconds(5));
  SessionId id = kInvalidSession;
  crbase::Status status = crbase::InternalError("not run");
  crsim::Task t = OpenAndStart(bed, file, &id, &status);
  bed.engine().RunFor(Seconds(3));
  ASSERT_TRUE(status.ok()) << status.ToString();
  ASSERT_NE(id, kInvalidSession);
  EXPECT_EQ(bed.cras_server.open_sessions(), 1u);
  // Buffer reservation: B_i = 2*(T*R + C) = 2*(0.5*187500 + 6250) = 200000
  // (frame timestamps are boundary-exact, so a 0.5 s window holds exactly
  // 15 frame starts and the derived worst rate equals the nominal rate).
  EXPECT_EQ(bed.cras_server.buffer_bytes_reserved(), 200000);
  // Wired: 250 KB server + buffers.
  EXPECT_EQ(bed.kernel.wired_bytes(), 250 * 1024 + 200000);

  crbase::Status close_status;
  crsim::Task closer = bed.kernel.Spawn(
      "closer", crrt::kPriorityClient, [&](crrt::ThreadContext&) -> crsim::Task {
        close_status = co_await bed.cras_server.Close(id);
      });
  bed.engine().RunFor(Seconds(1));
  EXPECT_TRUE(close_status.ok());
  EXPECT_EQ(bed.cras_server.open_sessions(), 0u);
  EXPECT_EQ(bed.cras_server.buffer_bytes_reserved(), 0);
  EXPECT_EQ(bed.kernel.wired_bytes(), 250 * 1024);
}

TEST(CrasServer, AdmissionRejectsFifteenthMpeg1Stream) {
  Testbed bed;
  bed.StartServers();
  std::vector<crmedia::MediaFile> files;
  for (int i = 0; i < 16; ++i) {
    files.push_back(MakeMpeg1(bed, "movie" + std::to_string(i), Seconds(4)));
  }
  int accepted = 0;
  int rejected = 0;
  crsim::Task t = bed.kernel.Spawn(
      "opener", crrt::kPriorityClient, [&](crrt::ThreadContext&) -> crsim::Task {
        for (const auto& file : files) {
          OpenParams params;
          params.inode = file.inode;
          params.index = file.index;
          auto opened = co_await bed.cras_server.Open(std::move(params));
          if (opened.ok()) {
            ++accepted;
          } else {
            EXPECT_EQ(opened.status().code(), crbase::StatusCode::kResourceExhausted);
            ++rejected;
          }
        }
      });
  bed.engine().RunFor(Seconds(1));
  // T=0.5 s admits 14 MPEG1 streams (see core_admission_test).
  EXPECT_EQ(accepted, 14);
  EXPECT_EQ(rejected, 2);
  EXPECT_EQ(bed.cras_server.stats().sessions_rejected, 2);
}

TEST(CrasServer, FourteenConcurrentStreamsAllMeetDeadlines) {
  Testbed bed;
  bed.StartServers();
  std::vector<crmedia::MediaFile> files;
  std::vector<std::unique_ptr<PlayerStats>> stats;
  std::vector<crsim::Task> players;
  for (int i = 0; i < 14; ++i) {
    files.push_back(MakeMpeg1(bed, "movie" + std::to_string(i), Seconds(8)));
  }
  PlayerOptions options;
  options.play_length = Seconds(6);
  for (int i = 0; i < 14; ++i) {
    // Staggered starts: lock-step clients would contend for the CPU at
    // every frame boundary, which measures the client mob, not the server.
    options.start_delay = Milliseconds(73) * i;
    stats.push_back(std::make_unique<PlayerStats>());
    players.push_back(
        SpawnCrasPlayer(bed.kernel, bed.cras_server, files[static_cast<std::size_t>(i)],
                        options, stats.back().get()));
  }
  bed.engine().RunFor(Seconds(12));
  for (const auto& s : stats) {
    EXPECT_FALSE(s->open_rejected);
    EXPECT_EQ(s->frames_missed, 0);
    EXPECT_LE(s->max_delay(), Milliseconds(2));
  }
  EXPECT_EQ(bed.cras_server.stats().deadline_misses, 0);
}

TEST(CrasServer, StopPausesPrefetching) {
  Testbed bed;
  bed.StartServers();
  crmedia::MediaFile file = MakeMpeg1(bed, "movie", Seconds(30));
  SessionId id = kInvalidSession;
  crbase::Status status;
  crsim::Task t = OpenAndStart(bed, file, &id, &status);
  bed.engine().RunFor(Seconds(2));
  ASSERT_TRUE(status.ok());

  crsim::Task stopper = bed.kernel.Spawn(
      "stopper", crrt::kPriorityClient, [&](crrt::ThreadContext&) -> crsim::Task {
        (void)co_await bed.cras_server.StopStream(id);
      });
  bed.engine().RunFor(Seconds(1));
  const std::int64_t bytes_after_stop = bed.cras_server.stats().bytes_read;
  bed.engine().RunFor(Seconds(5));
  // No new prefetches while stopped.
  EXPECT_EQ(bed.cras_server.stats().bytes_read, bytes_after_stop);

  // The logical clock froze too.
  const crbase::Time frozen = bed.cras_server.LogicalNow(id);
  bed.engine().RunFor(Seconds(2));
  EXPECT_EQ(bed.cras_server.LogicalNow(id), frozen);
}

TEST(CrasServer, SeekRepositionsStream) {
  Testbed bed;
  bed.StartServers();
  crmedia::MediaFile file = MakeMpeg1(bed, "movie", Seconds(30));
  bool seek_worked = false;
  crsim::Task t = bed.kernel.Spawn(
      "seeker", crrt::kPriorityClient, [&](crrt::ThreadContext& ctx) -> crsim::Task {
        OpenParams params;
        params.inode = file.inode;
        params.index = file.index;
        auto opened = co_await bed.cras_server.Open(std::move(params));
        CRAS_CHECK(opened.ok());
        const SessionId id = *opened;
        // Seek to 20 s *before* starting, then start: prefetch begins there.
        (void)co_await bed.cras_server.Seek(id, Seconds(20));
        (void)co_await bed.cras_server.StartStream(id,
                                                   bed.cras_server.SuggestedInitialDelay());
        // Logical clock reads 20s - initial_delay and advances from there.
        co_await ctx.Sleep(bed.cras_server.SuggestedInitialDelay() + Milliseconds(200));
        std::optional<BufferedChunk> chunk =
            bed.cras_server.Get(id, bed.cras_server.LogicalNow(id));
        seek_worked = chunk.has_value() && chunk->timestamp >= Seconds(20);
      });
  bed.engine().RunFor(Seconds(5));
  EXPECT_TRUE(seek_worked);
}

TEST(CrasServer, DynamicQosClientAtThirdRateSkipsFramesWithoutFeedback) {
  // §2.4's example: a 30 fps stream consumed at 10 fps. CRAS retrieves all
  // frames; the client fetches every third; skipped frames age out; no
  // overflow and no server interaction about the rate change.
  Testbed bed;
  bed.StartServers();
  crmedia::MediaFile file = MakeMpeg1(bed, "movie", Seconds(12));
  PlayerStats stats;
  PlayerOptions options;
  options.play_length = Seconds(9);
  options.frame_step = 3;
  crsim::Task player = SpawnCrasPlayer(bed.kernel, bed.cras_server, file, options, &stats);

  SessionId probe = kInvalidSession;
  // Snoop the session id via the server's table (single session).
  bed.engine().RunFor(Seconds(2));
  ASSERT_EQ(bed.cras_server.open_sessions(), 1u);
  (void)probe;
  bed.engine().RunFor(Seconds(12));

  EXPECT_EQ(stats.frames_missed, 0);
  EXPECT_LE(stats.max_delay(), Milliseconds(1));
  // Played one third of the frames in 9 s: ~90 of ~270.
  EXPECT_NEAR(static_cast<double>(stats.frames_played), 90.0, 3.0);
  // The server still retrieved everything (constant-rate retrieval is
  // independent of consumption): published ~270+ chunks.
  EXPECT_GT(bed.cras_server.stats().bytes_read, 250 * 6250);
}

TEST(CrasServer, RejectsOpenWithBadIndex) {
  Testbed bed;
  bed.StartServers();
  crmedia::MediaFile file = MakeMpeg1(bed, "movie", Seconds(2));
  crbase::Status got;
  crsim::Task t = bed.kernel.Spawn(
      "opener", crrt::kPriorityClient, [&](crrt::ThreadContext&) -> crsim::Task {
        OpenParams params;
        params.inode = file.inode;  // index missing
        auto opened = co_await bed.cras_server.Open(std::move(params));
        got = opened.status();
      });
  bed.engine().RunFor(Seconds(1));
  EXPECT_EQ(got.code(), crbase::StatusCode::kInvalidArgument);
}

TEST(CrasServer, ControlOpsOnUnknownSessionFail) {
  Testbed bed;
  bed.StartServers();
  crbase::Status start_st;
  crbase::Status stop_st;
  crbase::Status seek_st;
  crbase::Status close_st;
  crsim::Task t = bed.kernel.Spawn(
      "ops", crrt::kPriorityClient, [&](crrt::ThreadContext&) -> crsim::Task {
        start_st = co_await bed.cras_server.StartStream(99, 0);
        stop_st = co_await bed.cras_server.StopStream(99);
        seek_st = co_await bed.cras_server.Seek(99, 0);
        close_st = co_await bed.cras_server.Close(99);
      });
  bed.engine().RunFor(Seconds(1));
  EXPECT_EQ(start_st.code(), crbase::StatusCode::kNotFound);
  EXPECT_EQ(stop_st.code(), crbase::StatusCode::kNotFound);
  EXPECT_EQ(seek_st.code(), crbase::StatusCode::kNotFound);
  EXPECT_EQ(close_st.code(), crbase::StatusCode::kNotFound);
}

TEST(CrasServer, GetBeforeStartMisses) {
  Testbed bed;
  bed.StartServers();
  crmedia::MediaFile file = MakeMpeg1(bed, "movie", Seconds(2));
  std::optional<BufferedChunk> got;
  crsim::Task t = bed.kernel.Spawn(
      "opener", crrt::kPriorityClient, [&](crrt::ThreadContext& ctx) -> crsim::Task {
        OpenParams params;
        params.inode = file.inode;
        params.index = file.index;
        auto opened = co_await bed.cras_server.Open(std::move(params));
        CRAS_CHECK(opened.ok());
        co_await ctx.Sleep(Seconds(2));  // no crs_start: nothing prefetched
        got = bed.cras_server.Get(*opened, 0);
      });
  bed.engine().RunFor(Seconds(3));
  EXPECT_FALSE(got.has_value());
}

TEST(CrasServer, LyingClientDegradesOnlyItself) {
  // A client declares a tenth of its true rate. Admission passes, but its
  // per-interval demand exceeds the declared reservation, so the shared
  // buffer (sized from the declaration) thrashes: the stream cannot play
  // cleanly. The server keeps running and other invariants hold.
  Testbed bed;
  bed.StartServers();
  crmedia::MediaFile file = MakeMpeg1(bed, "movie", Seconds(8));
  PlayerStats honest;
  crmedia::MediaFile file2 = MakeMpeg1(bed, "movie2", Seconds(8));
  PlayerStats liar;
  PlayerOptions options;
  options.play_length = Seconds(6);

  // The liar declares 18750 B/s for a 187500 B/s stream.
  crsim::Task liar_task = bed.kernel.Spawn(
      "liar", crrt::kPriorityClient, [&](crrt::ThreadContext& ctx) -> crsim::Task {
        OpenParams params;
        params.inode = file2.inode;
        params.index = file2.index;
        params.declared_rate = 18750.0;
        auto opened = co_await bed.cras_server.Open(std::move(params));
        CRAS_CHECK(opened.ok());
        (void)co_await bed.cras_server.StartStream(*opened,
                                                   bed.cras_server.SuggestedInitialDelay());
        co_await ctx.Sleep(Seconds(6));
        liar.bytes_consumed = 0;  // measured via buffer stats below
      });
  crsim::Task honest_task =
      SpawnCrasPlayer(bed.kernel, bed.cras_server, file, options, &honest);
  bed.engine().RunFor(Seconds(12));

  // The honest stream is unaffected.
  EXPECT_EQ(honest.frames_missed, 0);
  EXPECT_LE(honest.max_delay(), Milliseconds(1));
  EXPECT_EQ(bed.cras_server.stats().deadline_misses, 0);
}

TEST(CrasServer, FastForwardDoublesRetrievalRate) {
  // §2.2: 60 fps playback of a 30 fps stream retrieves all frames at twice
  // the rate; admission charges 2*R.
  Testbed bed;
  bed.StartServers();
  crmedia::MediaFile file = MakeMpeg1(bed, "movie", Seconds(10));
  SessionId id = kInvalidSession;
  crsim::Task t = bed.kernel.Spawn(
      "ff", crrt::kPriorityClient, [&](crrt::ThreadContext& ctx) -> crsim::Task {
        OpenParams params;
        params.inode = file.inode;
        params.index = file.index;
        params.rate_factor = 2.0;
        auto opened = co_await bed.cras_server.Open(std::move(params));
        CRAS_CHECK(opened.ok());
        id = *opened;
        (void)co_await bed.cras_server.StartStream(id,
                                                   bed.cras_server.SuggestedInitialDelay());
        co_await ctx.Sleep(Seconds(4));
      });
  bed.engine().RunFor(Seconds(5));
  // Double-rate reservation: B_i = 2*(0.5*375000 + 6250) = 387500.
  EXPECT_EQ(bed.cras_server.buffer_bytes_reserved(), 387500);
  // ~4 s of wall time at 2x consumed ~8 s of stream (~1.5 MB read).
  EXPECT_GT(bed.cras_server.stats().bytes_read, static_cast<std::int64_t>(5.5 * 187500));
}

TEST(CrasServer, ShutdownStopsThreads) {
  Testbed bed;
  bed.StartServers();
  crmedia::MediaFile file = MakeMpeg1(bed, "movie", Seconds(4));
  PlayerStats stats;
  PlayerOptions options;
  options.play_length = Seconds(2);
  crsim::Task player = SpawnCrasPlayer(bed.kernel, bed.cras_server, file, options, &stats);
  bed.engine().RunFor(Seconds(6));
  bed.cras_server.SignalShutdown();
  bed.engine().RunFor(Seconds(2));
  const std::int64_t bytes = bed.cras_server.stats().bytes_read;
  bed.engine().RunFor(Seconds(5));
  EXPECT_EQ(bed.cras_server.stats().bytes_read, bytes);  // scheduler is down
}

}  // namespace
}  // namespace cras
