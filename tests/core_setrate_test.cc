// Mid-session rate changes (crs_set_rate): fast-forward with re-admission.

#include <gtest/gtest.h>

#include "src/base/bytes.h"
#include "src/core/cras.h"
#include "src/core/testbed.h"
#include "src/media/media_file.h"

namespace cras {
namespace {

using crbase::Milliseconds;
using crbase::Seconds;

struct RateRig {
  Testbed bed;
  crmedia::MediaFile file;
  SessionId id = kInvalidSession;

  RateRig() {
    bed.StartServers();
    file = *crmedia::WriteMpeg1File(bed.fs, "movie", Seconds(30));
  }

  // Opens+starts the session and runs `fn` in a client thread.
  void Run(std::function<crsim::Task(crrt::ThreadContext&, RateRig&)> fn,
           crbase::Duration run_for = Seconds(10)) {
    crsim::Task t = bed.kernel.Spawn(
        "client", crrt::kPriorityClient, [this, fn](crrt::ThreadContext& ctx) -> crsim::Task {
          OpenParams params;
          params.inode = file.inode;
          params.index = file.index;
          auto opened = co_await bed.cras_server.Open(std::move(params));
          CRAS_CHECK(opened.ok());
          id = *opened;
          (void)co_await bed.cras_server.StartStream(
              id, bed.cras_server.SuggestedInitialDelay());
          co_await fn(ctx, *this);
        });
    bed.engine().RunFor(run_for);
  }
};

TEST(SetRate, FastForwardDoublesClockAndRetrieval) {
  RateRig rig;
  crbase::Time logical_before = 0;
  crbase::Time logical_mid = 0;
  std::int64_t bytes_at_switch = 0;
  rig.Run([&](crrt::ThreadContext& ctx, RateRig& r) -> crsim::Task {
    co_await ctx.Sleep(Seconds(3));
    logical_before = r.bed.cras_server.LogicalNow(r.id);
    bytes_at_switch = r.bed.cras_server.stats().bytes_read;
    crbase::Status st = co_await r.bed.cras_server.SetRate(r.id, 2.0);
    CRAS_CHECK_OK(st);
    co_await ctx.Sleep(Seconds(3));
    logical_mid = r.bed.cras_server.LogicalNow(r.id);
  });
  // 3 s of wall time at 2x advanced the clock ~6 s.
  EXPECT_NEAR(crbase::ToSeconds(logical_mid - logical_before), 6.0, 0.1);
  // Retrieval kept pace with the doubled rate (~2x 187.5 KB/s for 3+ s).
  EXPECT_GT(rig.bed.cras_server.stats().bytes_read - bytes_at_switch,
            static_cast<std::int64_t>(2 * 187500 * 2.5));
}

TEST(SetRate, SlowMotionReducesRetrieval) {
  RateRig rig;
  std::int64_t bytes_in_window = 0;
  rig.Run([&](crrt::ThreadContext& ctx, RateRig& r) -> crsim::Task {
    co_await ctx.Sleep(Seconds(3));
    crbase::Status st = co_await r.bed.cras_server.SetRate(r.id, 0.5);
    CRAS_CHECK_OK(st);
    const std::int64_t at_switch = r.bed.cras_server.stats().bytes_read;
    co_await ctx.Sleep(Seconds(4));
    bytes_in_window = r.bed.cras_server.stats().bytes_read - at_switch;
  });
  // Half-rate retrieval over exactly 4 s: ~375 KB plus block-alignment
  // overhead; well under the ~750 KB a full-rate window would read.
  EXPECT_LT(bytes_in_window, static_cast<std::int64_t>(187500 * 3.0));
  EXPECT_GT(bytes_in_window, static_cast<std::int64_t>(187500 * 1.2));
}

TEST(SetRate, SpeedUpRefusedWhenDiskIsFull) {
  // Fill the disk's admission capacity, then ask one session for 4x.
  Testbed bed;
  bed.StartServers();
  std::vector<crmedia::MediaFile> files;
  for (int i = 0; i < 14; ++i) {
    files.push_back(*crmedia::WriteMpeg1File(bed.fs, "m" + std::to_string(i), Seconds(5)));
  }
  crbase::Status rate_status = crbase::InternalError("not run");
  crsim::Task t = bed.kernel.Spawn(
      "client", crrt::kPriorityClient, [&](crrt::ThreadContext&) -> crsim::Task {
        SessionId first = kInvalidSession;
        for (const auto& file : files) {
          OpenParams params;
          params.inode = file.inode;
          params.index = file.index;
          auto opened = co_await bed.cras_server.Open(std::move(params));
          CRAS_CHECK(opened.ok());
          if (first == kInvalidSession) {
            first = *opened;
          }
        }
        rate_status = co_await bed.cras_server.SetRate(first, 4.0);
      });
  bed.engine().RunFor(Seconds(2));
  EXPECT_EQ(rate_status.code(), crbase::StatusCode::kResourceExhausted);
}

TEST(SetRate, GrowsBufferReservation) {
  RateRig rig;
  std::int64_t reserved_before = 0;
  std::int64_t reserved_after = 0;
  rig.Run([&](crrt::ThreadContext& ctx, RateRig& r) -> crsim::Task {
    co_await ctx.Sleep(Seconds(2));
    reserved_before = r.bed.cras_server.buffer_bytes_reserved();
    (void)co_await r.bed.cras_server.SetRate(r.id, 2.0);
    reserved_after = r.bed.cras_server.buffer_bytes_reserved();
  });
  EXPECT_GT(reserved_after, reserved_before);
}

TEST(SetRate, Validation) {
  RateRig rig;
  crbase::Status bad_rate;
  crbase::Status bad_session;
  rig.Run([&](crrt::ThreadContext&, RateRig& r) -> crsim::Task {
    bad_rate = co_await r.bed.cras_server.SetRate(r.id, -1.0);
    bad_session = co_await r.bed.cras_server.SetRate(999, 2.0);
  });
  EXPECT_EQ(bad_rate.code(), crbase::StatusCode::kInvalidArgument);
  EXPECT_EQ(bad_session.code(), crbase::StatusCode::kNotFound);
}

TEST(SetRate, PlaybackStaysCleanAcrossTheSwitch) {
  // A player that switches to 2x mid-stream and keeps fetching by logical
  // time must see no gaps: data follows the accelerated clock.
  RateRig rig;
  std::int64_t hits = 0;
  std::int64_t transient_misses = 0;  // during pipeline re-priming after the switch
  std::int64_t late_misses = 0;       // after the pipeline should have recovered
  rig.Run(
      [&](crrt::ThreadContext& ctx, RateRig& r) -> crsim::Task {
        co_await ctx.Sleep(r.bed.cras_server.SuggestedInitialDelay() + Milliseconds(50));
        bool switched = false;
        for (int tick = 0; tick < 200; ++tick) {
          co_await ctx.Sleep(Milliseconds(33));
          if (!switched && tick == 100) {
            CRAS_CHECK_OK(co_await r.bed.cras_server.SetRate(r.id, 2.0));
            switched = true;
          }
          const crbase::Time logical = r.bed.cras_server.LogicalNow(r.id);
          if (logical < 0) {
            continue;
          }
          if (r.bed.cras_server.Get(r.id, logical).has_value()) {
            ++hits;
          } else if (tick < 140) {
            ++transient_misses;
          } else {
            ++late_misses;
          }
        }
      },
      Seconds(14));
  // A speed-up may stall the pipeline briefly (the accelerated clock runs
  // ahead of in-flight windows) but must recover within ~2 intervals.
  EXPECT_LE(transient_misses, 40);
  EXPECT_EQ(late_misses, 0);
  EXPECT_GT(hits, 155);
}

}  // namespace
}  // namespace cras
