// Constant-rate writing (the paper's §4 extension): recording sessions over
// preallocated files, staged through the interval scheduler.

#include <gtest/gtest.h>

#include "src/base/bytes.h"
#include "src/core/cras.h"
#include "src/core/player.h"
#include "src/core/testbed.h"
#include "src/media/media_file.h"

namespace cras {
namespace {

using crbase::Milliseconds;
using crbase::Seconds;

// A recorder: opens a write session over a preallocated file and produces
// chunks at the stream's frame rate (a capture device writing live video).
crsim::Task SpawnRecorder(Testbed& bed, crufs::InodeNumber inode,
                          const crmedia::ChunkIndex& index, crbase::Duration record_length,
                          SessionId* id_out, crbase::Status* status_out) {
  return bed.kernel.Spawn(
      "recorder", crrt::kPriorityClient, [&bed, inode, &index, record_length, id_out,
                                          status_out](crrt::ThreadContext& ctx) -> crsim::Task {
        OpenParams params;
        params.inode = inode;
        params.index = index;
        params.kind = SessionKind::kWrite;
        auto opened = co_await bed.cras_server.Open(std::move(params));
        if (!opened.ok()) {
          *status_out = opened.status();
          co_return;
        }
        const SessionId id = *opened;
        *id_out = id;
        *status_out = co_await bed.cras_server.StartStream(id, 0);
        const crbase::Time start = ctx.Now();
        for (std::size_t c = 0; c < index.count(); ++c) {
          const crmedia::Chunk& chunk = index.at(c);
          if (chunk.timestamp > record_length) {
            break;
          }
          const crbase::Time due = start + chunk.timestamp;
          if (due > ctx.Now()) {
            co_await ctx.Sleep(due - ctx.Now());
          }
          CRAS_CHECK_OK(bed.cras_server.PutChunk(id, static_cast<std::int64_t>(c)));
        }
      });
}

crmedia::ChunkIndex Mpeg1Index(crbase::Duration length) {
  return crmedia::BuildCbrIndex(crmedia::kMpeg1BytesPerSec, 30.0, length);
}

crufs::InodeNumber PreallocatedFile(Testbed& bed, const std::string& name,
                                    std::int64_t bytes) {
  crufs::InodeNumber inode = *bed.fs.Create(name);
  CRAS_CHECK_OK(bed.fs.PreallocateContiguous(inode, bytes));
  return inode;
}

TEST(CrasWrite, RecordsAtConstantRate) {
  Testbed bed;
  bed.StartServers();
  crmedia::ChunkIndex index = Mpeg1Index(Seconds(10));
  crufs::InodeNumber inode = PreallocatedFile(bed, "capture", index.total_bytes());
  SessionId id = kInvalidSession;
  crbase::Status status = crbase::InternalError("not run");
  crsim::Task recorder = SpawnRecorder(bed, inode, index, Seconds(8), &id, &status);
  bed.engine().RunFor(Seconds(10));
  ASSERT_TRUE(status.ok()) << status.ToString();
  auto stats = bed.cras_server.GetSessionStats(id);
  ASSERT_TRUE(stats.ok());
  // ~241 frames produced over 8 s; all must have hit the disk by now.
  EXPECT_GE(stats->chunks_written, 240);
  EXPECT_GT(bed.cras_server.stats().bytes_written, 235LL * 6250);
  EXPECT_GT(bed.cras_server.stats().write_requests, 10);
  EXPECT_EQ(bed.cras_server.stats().deadline_misses, 0);
}

TEST(CrasWrite, WriteSessionCountsAgainstAdmission) {
  Testbed bed;
  bed.StartServers();
  // Fill admission with write sessions: capacity is the same 14 as reads.
  int accepted = 0;
  crsim::Task opener = bed.kernel.Spawn(
      "opener", crrt::kPriorityClient, [&](crrt::ThreadContext&) -> crsim::Task {
        for (int i = 0; i < 16; ++i) {
          crmedia::ChunkIndex index = Mpeg1Index(Seconds(2));
          crufs::InodeNumber inode =
              PreallocatedFile(bed, "cap" + std::to_string(i), index.total_bytes());
          OpenParams params;
          params.inode = inode;
          params.index = std::move(index);
          params.kind = SessionKind::kWrite;
          auto opened = co_await bed.cras_server.Open(std::move(params));
          if (opened.ok()) {
            ++accepted;
          }
        }
      });
  bed.engine().RunFor(Seconds(2));
  EXPECT_EQ(accepted, 14);
}

TEST(CrasWrite, MixedReadAndWriteSessionsCoexist) {
  Testbed bed;
  bed.StartServers();
  // One recorder and one player simultaneously; both meet their rates.
  crmedia::ChunkIndex rec_index = Mpeg1Index(Seconds(8));
  crufs::InodeNumber rec_inode = PreallocatedFile(bed, "capture", rec_index.total_bytes());
  SessionId rec_id = kInvalidSession;
  crbase::Status rec_status = crbase::InternalError("not run");
  crsim::Task recorder =
      SpawnRecorder(bed, rec_inode, rec_index, Seconds(6), &rec_id, &rec_status);

  auto movie = crmedia::WriteMpeg1File(bed.fs, "movie", Seconds(8));
  ASSERT_TRUE(movie.ok());
  PlayerStats player_stats;
  PlayerOptions options;
  options.play_length = Seconds(6);
  crsim::Task player =
      SpawnCrasPlayer(bed.kernel, bed.cras_server, *movie, options, &player_stats);

  bed.engine().RunFor(Seconds(10));
  ASSERT_TRUE(rec_status.ok());
  EXPECT_EQ(player_stats.frames_missed, 0);
  EXPECT_LE(player_stats.max_delay(), Milliseconds(1));
  auto rec_stats = bed.cras_server.GetSessionStats(rec_id);
  ASSERT_TRUE(rec_stats.ok());
  EXPECT_GE(rec_stats->chunks_written, 175);
}

TEST(CrasWrite, PutChunkValidation) {
  Testbed bed;
  bed.StartServers();
  crmedia::ChunkIndex index = Mpeg1Index(Seconds(2));
  crufs::InodeNumber inode = PreallocatedFile(bed, "capture", index.total_bytes());
  auto movie = crmedia::WriteMpeg1File(bed.fs, "movie", Seconds(2));
  ASSERT_TRUE(movie.ok());
  crbase::Status on_read_session;
  crbase::Status out_of_range;
  crsim::Task t = bed.kernel.Spawn(
      "val", crrt::kPriorityClient, [&](crrt::ThreadContext&) -> crsim::Task {
        OpenParams write_params;
        write_params.inode = inode;
        write_params.index = index;
        write_params.kind = SessionKind::kWrite;
        auto write_session = co_await bed.cras_server.Open(std::move(write_params));
        CRAS_CHECK(write_session.ok());
        out_of_range = bed.cras_server.PutChunk(*write_session, 1 << 20);

        OpenParams read_params;
        read_params.inode = movie->inode;
        read_params.index = movie->index;
        auto read_session = co_await bed.cras_server.Open(std::move(read_params));
        CRAS_CHECK(read_session.ok());
        on_read_session = bed.cras_server.PutChunk(*read_session, 0);
      });
  bed.engine().RunFor(Seconds(1));
  EXPECT_EQ(out_of_range.code(), crbase::StatusCode::kOutOfRange);
  EXPECT_EQ(on_read_session.code(), crbase::StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace cras
