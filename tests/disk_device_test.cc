// Disk device service-time behaviour.

#include "src/disk/device.h"

#include <gtest/gtest.h>

#include "src/base/time_units.h"
#include "src/sim/engine.h"

namespace crdisk {
namespace {

using crbase::Milliseconds;
using crbase::ToMilliseconds;

DiskDevice::Options DefaultOptions() {
  DiskDevice::Options options;
  options.geometry = St32550nGeometry();
  return options;
}

TEST(DiskDevice, ServiceTimeDecomposes) {
  crsim::Engine engine;
  DiskDevice device(engine, DefaultOptions());
  DiskCompletion result;
  DiskRequest req;
  req.lba = 0;
  req.sectors = 16;
  req.on_complete = [&](const DiskCompletion& c) { result = c; };
  device.StartIo(req, 1, engine.Now());
  EXPECT_TRUE(device.busy());
  engine.Run();
  EXPECT_FALSE(device.busy());
  EXPECT_EQ(result.finished_at, result.started_at + result.command_time + result.seek_time +
                                    result.rotation_time + result.transfer_time);
  EXPECT_EQ(result.command_time, Milliseconds(2));
  EXPECT_EQ(result.seek_time, 0);  // head starts at cylinder 0
  EXPECT_EQ(result.sectors, 16);
}

TEST(DiskDevice, TransferRateMatchesGeometry) {
  crsim::Engine engine;
  DiskDevice device(engine, DefaultOptions());
  const DiskGeometry& geo = device.geometry();
  DiskCompletion result;
  DiskRequest req;
  req.lba = 0;
  req.sectors = 512;  // 256 KiB
  req.on_complete = [&](const DiskCompletion& c) { result = c; };
  device.StartIo(req, 1, engine.Now());
  engine.Run();
  const double rate =
      static_cast<double>(result.bytes()) / crbase::ToSeconds(result.transfer_time);
  // Within 0.01% (per-sector time rounds to whole nanoseconds).
  EXPECT_NEAR(rate, geo.transfer_rate(), geo.transfer_rate() * 1e-4);
}

TEST(DiskDevice, SeekChargedForCylinderDistance) {
  crsim::Engine engine;
  DiskDevice device(engine, DefaultOptions());
  const DiskGeometry& geo = device.geometry();
  DiskCompletion result;
  DiskRequest req;
  req.lba = 1000 * geo.sectors_per_cylinder();  // cylinder 1000
  req.sectors = 16;
  req.on_complete = [&](const DiskCompletion& c) { result = c; };
  device.StartIo(req, 1, engine.Now());
  engine.Run();
  EXPECT_EQ(result.seek_time, device.MeasureSeek(0, 1000));
  EXPECT_GT(result.seek_time, Milliseconds(6));  // long seek, linear region
  EXPECT_EQ(device.current_cylinder(), 1000);
}

TEST(DiskDevice, RotationalLatencyBoundedByOneRevolution) {
  crsim::Engine engine;
  DiskDevice device(engine, DefaultOptions());
  const DiskGeometry& geo = device.geometry();
  for (int i = 0; i < 20; ++i) {
    DiskCompletion result;
    DiskRequest req;
    req.lba = (i * 37) % geo.total_sectors();
    req.sectors = 1;
    req.on_complete = [&](const DiskCompletion& c) { result = c; };
    device.StartIo(req, 1, engine.Now());
    engine.Run();
    EXPECT_GE(result.rotation_time, 0);
    EXPECT_LT(result.rotation_time, geo.rotation_time());
  }
}

TEST(DiskDevice, SequentialReadsIncurNoSeek) {
  crsim::Engine engine;
  DiskDevice device(engine, DefaultOptions());
  const DiskGeometry& geo = device.geometry();
  Lba next = 0;
  Duration total_seek = 0;
  for (int i = 0; i < 10; ++i) {
    DiskCompletion result;
    DiskRequest req;
    req.lba = next;
    req.sectors = geo.sectors_per_track;
    req.on_complete = [&](const DiskCompletion& c) { result = c; };
    device.StartIo(req, 1, engine.Now());
    engine.Run();
    total_seek += result.seek_time;
    next += req.sectors;
  }
  // 10 tracks < 1 cylinder worth of tracks? 10 tracks span at most one
  // cylinder boundary on an 11-head disk.
  EXPECT_EQ(total_seek, 0);
}

TEST(DiskDevice, StatsAccumulate) {
  crsim::Engine engine;
  DiskDevice device(engine, DefaultOptions());
  for (int i = 0; i < 5; ++i) {
    DiskRequest req;
    req.lba = i * 100000;
    req.sectors = 32;
    req.on_complete = [](const DiskCompletion&) {};
    device.StartIo(req, 1, engine.Now());
    engine.Run();
  }
  const DeviceStats& stats = device.stats();
  EXPECT_EQ(stats.requests, 5);
  EXPECT_EQ(stats.sectors, 160);
  EXPECT_EQ(stats.busy_time,
            stats.seek_time + stats.rotation_time + stats.transfer_time + stats.command_time);
  device.ResetStats();
  EXPECT_EQ(device.stats().requests, 0);
}

TEST(DiskDevice, WriteTimingEqualsReadTiming) {
  // The model charges writes like reads (the paper's write extension relies
  // on this symmetry).
  crsim::Engine engine;
  DiskDevice device(engine, DefaultOptions());
  DiskCompletion read_done;
  DiskCompletion write_done;
  DiskRequest read{IoKind::kRead, 500000, 64, false, [&](const DiskCompletion& c) { read_done = c; }};
  device.StartIo(read, 1, engine.Now());
  engine.Run();
  // Reset head position to make the comparison exact.
  DiskRequest rewind{IoKind::kRead, 0, 1, false, [](const DiskCompletion&) {}};
  device.StartIo(rewind, 2, engine.Now());
  engine.Run();
  const crbase::Time t0 = engine.Now();
  // Align the platter phase: issue at the same angle modulo rotation.
  const Duration rot = device.geometry().rotation_time();
  const crbase::Time aligned = ((t0 + rot - 1) / rot) * rot + (read_done.started_at % rot);
  engine.RunUntil(aligned);
  DiskRequest write{IoKind::kWrite, 500000, 64, false,
                    [&](const DiskCompletion& c) { write_done = c; }};
  device.StartIo(write, 3, engine.Now());
  engine.Run();
  EXPECT_EQ(write_done.service_time(), read_done.service_time());
}

}  // namespace
}  // namespace crdisk
