// Dual-queue C-SCAN driver behaviour.

#include "src/disk/driver.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/base/time_units.h"
#include "src/sim/engine.h"
#include "src/sim/task.h"

namespace crdisk {
namespace {

using crbase::Milliseconds;

struct Rig {
  crsim::Engine engine;
  DiskDevice device;
  DiskDriver driver;

  explicit Rig(DiskDriver::Options options = {})
      : device(engine, [] {
          DiskDevice::Options o;
          o.geometry = St32550nGeometry();
          return o;
        }()),
        driver(engine, device, options) {}

  Lba CylinderLba(std::int64_t cylinder) const {
    return cylinder * device.geometry().sectors_per_cylinder();
  }

  // Submits a small read at `cylinder`, recording its completion order.
  void SubmitAt(std::int64_t cylinder, bool realtime, std::vector<std::int64_t>* order) {
    DiskRequest req;
    req.lba = CylinderLba(cylinder);
    req.sectors = 16;
    req.realtime = realtime;
    req.on_complete = [order, cylinder](const DiskCompletion&) { order->push_back(cylinder); };
    driver.Submit(std::move(req));
  }
};

TEST(DiskDriver, SingleRequestCompletes) {
  Rig rig;
  std::vector<std::int64_t> order;
  rig.SubmitAt(100, false, &order);
  rig.engine.Run();
  EXPECT_EQ(order, std::vector<std::int64_t>{100});
  EXPECT_EQ(rig.driver.normal_stats().completed, 1);
}

TEST(DiskDriver, CScanServesAscendingFromHead) {
  Rig rig;
  std::vector<std::int64_t> order;
  // Park a request at cylinder 0 to occupy the device, then queue
  // out-of-order requests; they must complete in ascending cylinder order.
  rig.SubmitAt(0, false, &order);
  rig.SubmitAt(3000, false, &order);
  rig.SubmitAt(1000, false, &order);
  rig.SubmitAt(2000, false, &order);
  rig.engine.Run();
  EXPECT_EQ(order, (std::vector<std::int64_t>{0, 1000, 2000, 3000}));
}

TEST(DiskDriver, CScanWrapsToLowestCylinder) {
  Rig rig;
  std::vector<std::int64_t> order;
  rig.SubmitAt(2000, false, &order);  // enters service; head moves to 2000
  // Both below the head: C-SCAN wraps to the lowest, then ascends.
  rig.SubmitAt(500, false, &order);
  rig.SubmitAt(100, false, &order);
  rig.engine.Run();
  EXPECT_EQ(order, (std::vector<std::int64_t>{2000, 100, 500}));
}

TEST(DiskDriver, RealtimeQueueBeatsNormalQueue) {
  Rig rig;
  std::vector<std::int64_t> order;
  rig.SubmitAt(0, false, &order);  // in service
  rig.SubmitAt(10, false, &order);
  rig.SubmitAt(20, false, &order);
  rig.SubmitAt(3000, true, &order);  // RT, worse cylinder, must still go next
  rig.engine.Run();
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 3000);
}

TEST(DiskDriver, InServiceRequestIsNotPreempted) {
  Rig rig;
  std::vector<std::int64_t> order;
  rig.SubmitAt(1000, false, &order);
  // Device is now busy; an RT arrival waits for completion (O_other).
  rig.SubmitAt(1001, true, &order);
  EXPECT_TRUE(rig.device.busy());
  rig.engine.Run();
  EXPECT_EQ(order, (std::vector<std::int64_t>{1000, 1001}));
}

TEST(DiskDriver, UnifiedQueueIgnoresRealtimeFlag) {
  DiskDriver::Options options;
  options.unified_queue = true;
  Rig rig(options);
  std::vector<std::int64_t> order;
  rig.SubmitAt(0, false, &order);
  rig.SubmitAt(10, false, &order);
  rig.SubmitAt(3000, true, &order);  // no privilege: served by C-SCAN position
  rig.engine.Run();
  EXPECT_EQ(order, (std::vector<std::int64_t>{0, 10, 3000}));
  EXPECT_EQ(rig.driver.realtime_stats().submitted, 0);
}

TEST(DiskDriver, FifoDisciplinePreservesArrivalOrder) {
  DiskDriver::Options options;
  options.discipline = QueueDiscipline::kFifo;
  Rig rig(options);
  std::vector<std::int64_t> order;
  rig.SubmitAt(0, false, &order);
  rig.SubmitAt(3000, false, &order);
  rig.SubmitAt(1000, false, &order);
  rig.SubmitAt(2000, false, &order);
  rig.engine.Run();
  EXPECT_EQ(order, (std::vector<std::int64_t>{0, 3000, 1000, 2000}));
}

TEST(DiskDriver, CScanReducesTotalSeekVsFifo) {
  auto run_with = [](QueueDiscipline discipline) {
    DiskDriver::Options options;
    options.discipline = discipline;
    Rig rig(options);
    std::vector<std::int64_t> order;
    // A scattered batch, submitted while the device is busy with the first.
    const std::int64_t cylinders[] = {0, 3200, 400, 2800, 800, 2400, 1200, 2000, 1600};
    for (std::int64_t c : cylinders) {
      rig.SubmitAt(c, false, &order);
    }
    rig.engine.Run();
    return rig.device.stats().seek_time;
  };
  // The physical seek curve is concave (long seeks are relatively cheap),
  // so the C-SCAN win on total seek time is solid but not dramatic.
  EXPECT_LT(run_with(QueueDiscipline::kCScan),
            run_with(QueueDiscipline::kFifo) * 8 / 10);
}

TEST(DiskDriver, ExecuteAwaitableDeliversCompletion) {
  Rig rig;
  DiskCompletion got;
  bool done = false;
  auto reader = [](Rig& r, DiskCompletion* out, bool* flag) -> crsim::Task {
    DiskRequest req;
    req.lba = r.CylinderLba(50);
    req.sectors = 128;
    req.realtime = true;
    *out = co_await r.driver.Execute(std::move(req));
    *flag = true;
  };
  crsim::Task t = reader(rig, &got, &done);
  rig.engine.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(got.sectors, 128);
  EXPECT_TRUE(got.realtime);
  EXPECT_EQ(rig.driver.realtime_stats().completed, 1);
}

TEST(DiskDriver, QueueTimeTracked) {
  Rig rig;
  std::vector<std::int64_t> order;
  rig.SubmitAt(0, false, &order);
  rig.SubmitAt(100, false, &order);
  rig.SubmitAt(200, false, &order);
  rig.engine.Run();
  EXPECT_GT(rig.driver.normal_stats().total_queue_time, 0);
  EXPECT_GE(rig.driver.normal_stats().max_queue_time, Milliseconds(2));
  EXPECT_EQ(rig.driver.normal_stats().max_depth, 2u);  // two waited while one ran
}

}  // namespace
}  // namespace crdisk
