// Device-level failure injection: transient faults charge their extra
// latency to exactly the requested number of requests, and throughput
// derating scales the media transfer and nothing else.

#include <gtest/gtest.h>

#include "src/base/time_units.h"
#include "src/disk/device.h"
#include "src/disk/driver.h"
#include "src/sim/engine.h"

namespace crdisk {
namespace {

using crbase::Duration;
using crbase::Milliseconds;

DiskDevice::Options DefaultOptions() {
  DiskDevice::Options options;
  options.geometry = St32550nGeometry();
  return options;
}

// The mechanical part of a service: everything the completion decomposes
// into. A transient fault's stall is the remainder above this.
Duration MechanicalTime(const DiskCompletion& c) {
  return c.command_time + c.seek_time + c.rotation_time + c.transfer_time;
}

DiskCompletion RunOne(crsim::Engine& engine, DiskDevice& device, Lba lba,
                      std::int64_t sectors = 16) {
  DiskCompletion result;
  DiskRequest req;
  req.lba = lba;
  req.sectors = sectors;
  req.on_complete = [&](const DiskCompletion& c) { result = c; };
  device.StartIo(req, 1, engine.Now());
  engine.Run();
  return result;
}

TEST(DiskFault, TransientFaultDelaysExactlyRequestCountRequests) {
  crsim::Engine engine;
  DiskDevice device(engine, DefaultOptions());
  const Duration extra = Milliseconds(15);
  device.InjectTransientFault(extra, 3);
  for (int i = 0; i < 6; ++i) {
    const DiskCompletion c = RunOne(engine, device, i * 5000);
    const Duration stall = (c.finished_at - c.started_at) - MechanicalTime(c);
    if (i < 3) {
      EXPECT_EQ(stall, extra) << "request " << i << " should stall";
    } else {
      EXPECT_EQ(stall, 0) << "request " << i << " should run clean";
    }
  }
  EXPECT_EQ(device.faults_applied(), 3);
}

TEST(DiskFault, ReinjectionRearmsTheCounter) {
  crsim::Engine engine;
  DiskDevice device(engine, DefaultOptions());
  device.InjectTransientFault(Milliseconds(5), 1);
  RunOne(engine, device, 0);
  EXPECT_EQ(device.faults_applied(), 1);
  // A second injection while clean re-arms; a zero-count injection disarms.
  device.InjectTransientFault(Milliseconds(5), 2);
  device.InjectTransientFault(Milliseconds(5), 0);
  RunOne(engine, device, 10000);
  EXPECT_EQ(device.faults_applied(), 1);
}

TEST(DiskFault, TransientFaultStallsTheRealTimeQueueBehindIt) {
  // The stall is a device property, not a queue property: with one faulty
  // request armed, whichever request reaches the device first eats it. The
  // normal request lands on an idle device and is dispatched on the spot,
  // so it carries the stall — and since a request at the device is never
  // preempted, the real-time arrival waits out the stall too (the admission
  // test's O_other term at its worst) but then runs clean.
  crsim::Engine engine;
  DiskDevice device(engine, DefaultOptions());
  DiskDriver driver(engine, device);
  const Duration extra = Milliseconds(25);
  device.InjectTransientFault(extra, 1);

  DiskCompletion rt_done;
  DiskCompletion nr_done;
  DiskRequest rt{IoKind::kRead, 200000, 32, true,
                 [&](const DiskCompletion& c) { rt_done = c; }};
  DiskRequest nr{IoKind::kRead, 100000, 32, false,
                 [&](const DiskCompletion& c) { nr_done = c; }};
  driver.Submit(nr);
  driver.Submit(rt);
  engine.Run();

  EXPECT_EQ((nr_done.finished_at - nr_done.started_at) - MechanicalTime(nr_done), extra);
  EXPECT_EQ((rt_done.finished_at - rt_done.started_at) - MechanicalTime(rt_done), 0);
  // The real-time request waited behind the whole stalled service.
  EXPECT_GE(rt_done.started_at, nr_done.finished_at);
  EXPECT_EQ(device.faults_applied(), 1);
}

TEST(DiskFault, ThroughputDeratingScalesOnlyTheTransfer) {
  crsim::Engine engine;
  DiskDevice nominal(engine, DefaultOptions());
  DiskDevice derated(engine, DefaultOptions());
  derated.SetThroughputDerating(2.0);
  EXPECT_EQ(derated.throughput_derating(), 2.0);

  const DiskCompletion a = RunOne(engine, nominal, 0, 512);
  const DiskCompletion b = RunOne(engine, derated, 0, 512);
  EXPECT_EQ(b.transfer_time, 2 * a.transfer_time);
  EXPECT_EQ(b.command_time, a.command_time);
  EXPECT_EQ(b.seek_time, a.seek_time);

  // 1.0 restores nominal service.
  derated.SetThroughputDerating(1.0);
  const DiskCompletion c = RunOne(engine, derated, 0, 512);
  EXPECT_EQ(c.transfer_time, a.transfer_time);
}

}  // namespace
}  // namespace crdisk
