// Geometry and seek-model unit tests.

#include <gtest/gtest.h>

#include "src/base/bytes.h"
#include "src/base/time_units.h"
#include "src/disk/geometry.h"
#include "src/disk/seek_model.h"

namespace crdisk {
namespace {

using crbase::Milliseconds;
using crbase::MillisecondsF;
using crbase::ToMilliseconds;

TEST(Geometry, St32550nMatchesPaperDisk) {
  const DiskGeometry geo = St32550nGeometry();
  // ~2 GB capacity.
  EXPECT_NEAR(static_cast<double>(geo.capacity_bytes()) / crbase::kGiB, 2.0, 0.1);
  // 7200 rpm -> 8.33 ms rotation (Table 4: T_rot).
  EXPECT_NEAR(ToMilliseconds(geo.rotation_time()), 8.33, 0.01);
  // ~6.5 MB/s media rate (Table 4: D).
  EXPECT_NEAR(geo.transfer_rate() / 1e6, 6.5, 0.2);
}

TEST(Geometry, LbaMapping) {
  const DiskGeometry geo = St32550nGeometry();
  EXPECT_EQ(geo.CylinderOf(0), 0);
  EXPECT_EQ(geo.CylinderOf(geo.sectors_per_cylinder() - 1), 0);
  EXPECT_EQ(geo.CylinderOf(geo.sectors_per_cylinder()), 1);
  EXPECT_EQ(geo.CylinderOf(geo.total_sectors() - 1), geo.cylinders - 1);
}

TEST(Geometry, AngleWrapsPerTrack) {
  const DiskGeometry geo = St32550nGeometry();
  EXPECT_DOUBLE_EQ(geo.AngleOf(0), 0.0);
  EXPECT_DOUBLE_EQ(geo.AngleOf(geo.sectors_per_track), 0.0);  // next track starts at angle 0
  EXPECT_GT(geo.AngleOf(geo.sectors_per_track / 2), 0.4);
  EXPECT_LT(geo.AngleOf(geo.sectors_per_track - 1), 1.0);
}

TEST(PhysicalSeekModel, ZeroDistanceIsFree) {
  PhysicalSeekModel model;
  EXPECT_EQ(model.SeekTime(0), 0);
  EXPECT_EQ(model.SeekTime(-5), 0);
}

TEST(PhysicalSeekModel, MonotonicInDistance) {
  PhysicalSeekModel model;
  Duration prev = 0;
  for (std::int64_t x : {1, 2, 5, 10, 50, 100, 399, 400, 401, 1000, 2000, 3510}) {
    const Duration t = model.SeekTime(x);
    EXPECT_GT(t, prev) << "at distance " << x;
    prev = t;
  }
}

TEST(PhysicalSeekModel, FullStrokeMatchesTable4Max) {
  PhysicalSeekModel model;
  EXPECT_NEAR(ToMilliseconds(model.SeekTime(3510)), 17.0, 0.05);
}

TEST(PhysicalSeekModel, ContinuousAtCrossover) {
  PhysicalSeekModel model;
  const Duration below = model.SeekTime(399);
  const Duration at = model.SeekTime(400);
  EXPECT_LT(at - below, Milliseconds(1));
}

TEST(LinearSeekModel, EndpointsAreExact) {
  LinearSeekModel model(Milliseconds(4), Milliseconds(17), 3510);
  EXPECT_EQ(model.SeekTime(0), 0);
  // t(x) = beta + alpha*x; alpha = 13ms/3510cyl.
  EXPECT_NEAR(ToMilliseconds(model.SeekTime(3510)), 17.0, 0.001);
  EXPECT_NEAR(ToMilliseconds(model.SeekTime(1)), 4.0037, 0.001);
}

TEST(LinearSeekModel, LinearApproxOverestimatesShortSeeks) {
  // The paper's admission pessimism at small stream counts comes from the
  // linear model over-charging short seeks vs the physical curve.
  PhysicalSeekModel physical;
  LinearSeekModel linear(Milliseconds(4), Milliseconds(17), 3510);
  for (std::int64_t x : {1, 5, 10, 20, 50}) {
    EXPECT_GT(linear.SeekTime(x), physical.SeekTime(x)) << "at distance " << x;
  }
}

TEST(FitLinearSeekModel, RecoversALine) {
  // Samples generated from an exact line must fit back to it.
  std::vector<SeekSample> samples;
  const double alpha = 3000.0;  // ns per cylinder
  const Duration beta = Milliseconds(4);
  for (std::int64_t x = 100; x <= 3500; x += 200) {
    samples.push_back({x, beta + static_cast<Duration>(alpha * static_cast<double>(x))});
  }
  const LinearSeekModel fit = FitLinearSeekModel(samples, 3510);
  EXPECT_NEAR(ToMilliseconds(fit.t_seek_min()), 4.0, 0.01);
  EXPECT_NEAR(ToMilliseconds(fit.t_seek_max()), 4.0 + 3510 * 3000.0 / 1e6, 0.05);
}

TEST(FitLinearSeekModel, FitOfPhysicalCurveBracketsTable4) {
  // Fitting the physical curve the way the authors fitted their
  // measurements should land near Table 4's 4 ms / 17 ms.
  PhysicalSeekModel physical;
  std::vector<SeekSample> samples;
  for (std::int64_t x = 10; x <= 3510; x += 50) {
    samples.push_back({x, physical.SeekTime(x)});
  }
  const LinearSeekModel fit = FitLinearSeekModel(samples, 3510);
  EXPECT_NEAR(ToMilliseconds(fit.t_seek_min()), 4.0, 1.5);
  EXPECT_NEAR(ToMilliseconds(fit.t_seek_max()), 17.0, 1.5);
}

TEST(FitLinearSeekModel, ClampsNegativeIntercept) {
  std::vector<SeekSample> samples = {
      {100, Milliseconds(1)},
      {3500, Milliseconds(30)},
  };
  const LinearSeekModel fit = FitLinearSeekModel(samples, 3510);
  EXPECT_GE(fit.t_seek_min(), 0);
}

}  // namespace
}  // namespace crdisk
