// Zoned-bit-recording geometry tests.

#include <gtest/gtest.h>

#include "src/disk/device.h"
#include "src/disk/geometry.h"
#include "src/sim/engine.h"

namespace crdisk {
namespace {

TEST(ZonedGeometry, UniformDefaultIsNotZoned) {
  const DiskGeometry geo = St32550nGeometry();
  EXPECT_FALSE(geo.zoned());
  EXPECT_EQ(geo.SectorsPerTrackAt(0), geo.sectors_per_track);
  EXPECT_EQ(geo.SectorsPerTrackAt(geo.cylinders - 1), geo.sectors_per_track);
  EXPECT_DOUBLE_EQ(geo.MinTransferRate(), geo.transfer_rate());
}

TEST(ZonedGeometry, ZoneLookupByCylinder) {
  const DiskGeometry geo = St32550nZonedGeometry();
  ASSERT_TRUE(geo.zoned());
  EXPECT_EQ(geo.SectorsPerTrackAt(0), 126);
  EXPECT_EQ(geo.SectorsPerTrackAt(877), 126);
  EXPECT_EQ(geo.SectorsPerTrackAt(878), 114);
  EXPECT_EQ(geo.SectorsPerTrackAt(1756), 102);
  EXPECT_EQ(geo.SectorsPerTrackAt(3509), 90);
}

TEST(ZonedGeometry, CapacityNearTwoGigabytes) {
  const DiskGeometry geo = St32550nZonedGeometry();
  EXPECT_NEAR(static_cast<double>(geo.capacity_bytes()) / 1e9, 2.1, 0.15);
}

TEST(ZonedGeometry, OuterZoneFasterThanInner) {
  const DiskGeometry geo = St32550nZonedGeometry();
  EXPECT_NEAR(geo.TransferRateAt(0) / 1e6, 7.74, 0.05);
  EXPECT_NEAR(geo.MinTransferRate() / 1e6, 5.53, 0.05);
  EXPECT_GT(geo.transfer_rate(), geo.MinTransferRate());
  // Average across zones stays near the uniform calibration.
  const double average = static_cast<double>(geo.capacity_bytes()) /
                         static_cast<double>(geo.cylinders * geo.heads) /
                         crbase::ToSeconds(geo.rotation_time());
  EXPECT_NEAR(average / 1e6, 6.6, 0.3);
}

TEST(ZonedGeometry, CylinderOfRoundTripsZoneBoundaries) {
  const DiskGeometry geo = St32550nZonedGeometry();
  // First sector of every zone maps to that zone's first cylinder.
  std::int64_t lba = 0;
  std::int64_t first_cylinder = 0;
  for (const DiskZone& zone : geo.zones) {
    EXPECT_EQ(geo.CylinderOf(lba), first_cylinder);
    EXPECT_EQ(geo.CylinderOf(lba + zone.cylinders * geo.heads * zone.sectors_per_track - 1),
              first_cylinder + zone.cylinders - 1);
    lba += zone.cylinders * geo.heads * zone.sectors_per_track;
    first_cylinder += zone.cylinders;
  }
  EXPECT_EQ(lba, geo.total_sectors());
}

TEST(ZonedGeometry, AngleUsesZoneTrackLength) {
  const DiskGeometry geo = St32550nZonedGeometry();
  // Mid-track in the outer zone: sector 63 of 126.
  EXPECT_DOUBLE_EQ(geo.AngleOf(63), 0.5);
  // Mid-track in the innermost zone: sector 45 of 90.
  std::int64_t inner_start = 0;
  for (std::size_t z = 0; z + 1 < geo.zones.size(); ++z) {
    inner_start += geo.zones[z].cylinders * geo.heads * geo.zones[z].sectors_per_track;
  }
  EXPECT_DOUBLE_EQ(geo.AngleOf(inner_start + 45), 0.5);
}

TEST(ZonedDevice, TransferTimeDependsOnZone) {
  crsim::Engine engine;
  DiskDevice::Options options;
  options.geometry = St32550nZonedGeometry();
  DiskDevice device(engine, options);
  const DiskGeometry& geo = device.geometry();

  auto read_rate = [&](Lba lba) {
    DiskCompletion result;
    DiskRequest req;
    req.lba = lba;
    req.sectors = 512;  // 256 KiB
    req.on_complete = [&result](const DiskCompletion& c) { result = c; };
    device.StartIo(req, 1, engine.Now());
    engine.Run();
    return static_cast<double>(result.bytes()) / crbase::ToSeconds(result.transfer_time);
  };

  const double outer = read_rate(0);
  const double inner = read_rate(geo.total_sectors() - 1024);
  EXPECT_NEAR(outer / 1e6, 7.74, 0.1);
  EXPECT_NEAR(inner / 1e6, 5.53, 0.1);
}

TEST(ZonedGeometry, ValidateRejectsBadConfigurations) {
  DiskGeometry geo = St32550nZonedGeometry();
  geo.zones[1].sectors_per_track = 200;  // denser than the outer zone
  EXPECT_DEATH(geo.Validate(), "outermost");
  DiskGeometry short_geo = St32550nZonedGeometry();
  short_geo.zones.pop_back();
  EXPECT_DEATH(short_geo.Validate(), "sum");
}

}  // namespace
}  // namespace crdisk
