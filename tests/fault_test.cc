// Fault subsystem: plan parsing, scripted injection against a volume, and
// the CRAS degradation controller end to end — a member dies mid-playback,
// the parity array reconstructs, and the server sheds exactly the streams
// the degraded admission model says it must.

#include "src/fault/fault.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/base/bytes.h"
#include "src/core/player.h"
#include "src/core/testbed.h"
#include "src/media/media_file.h"
#include "src/volume/parity_volume.h"
#include "src/volume/striped_volume.h"
#include "src/volume/volume_admission.h"

namespace crfault {
namespace {

using crbase::kMiB;
using crbase::Milliseconds;
using crbase::Seconds;

// ---------------------------------------------------------------------------
// Plans.

TEST(FaultPlan, FluentBuildersRecordEvents) {
  FaultPlan plan;
  plan.FailStop(Seconds(2), 1)
      .Transient(Seconds(3), 0, Milliseconds(15), 4)
      .SlowDisk(Seconds(4), 2, 2.5)
      .Recover(Seconds(5), 2);
  ASSERT_EQ(plan.events().size(), 4u);
  EXPECT_EQ(plan.events()[0].kind, FaultKind::kFailStop);
  EXPECT_EQ(plan.events()[0].disk, 1);
  EXPECT_EQ(plan.events()[1].extra_latency, Milliseconds(15));
  EXPECT_EQ(plan.events()[1].request_count, 4);
  EXPECT_EQ(plan.events()[2].throughput_derating, 2.5);
  EXPECT_EQ(plan.events()[3].kind, FaultKind::kRecover);
}

TEST(FaultPlan, ParseFailStopSpecAcceptsDiskAtMillis) {
  const auto event = FaultPlan::ParseFailStopSpec("1@2000");
  ASSERT_TRUE(event.ok()) << event.status().ToString();
  EXPECT_EQ(event->disk, 1);
  EXPECT_EQ(event->at, Seconds(2));
  EXPECT_EQ(event->kind, FaultKind::kFailStop);
}

TEST(FaultPlan, ParseFailStopSpecRejectsMalformedSpecs) {
  for (const char* bad : {"", "3", "@2000", "1@", "1@abc", "x@5", "1@5x", "-1@5"}) {
    EXPECT_FALSE(FaultPlan::ParseFailStopSpec(bad).ok()) << "spec: " << bad;
  }
}

// ---------------------------------------------------------------------------
// Injection against a bare volume.

TEST(FaultInjector, AppliesEachEventAtItsTimestamp) {
  crsim::Engine engine;
  crvol::VolumeOptions options;
  options.disks = 4;
  options.parity = true;
  crvol::ParityVolume volume(engine, options);

  FaultPlan plan;
  plan.SlowDisk(Milliseconds(10), 2, 2.0)
      .FailStop(Milliseconds(20), 1)
      .Recover(Milliseconds(30), 2);
  FaultInjector injector(engine, volume, plan);
  injector.Arm();
  EXPECT_TRUE(injector.armed());

  engine.RunUntil(Milliseconds(15));
  EXPECT_EQ(volume.member_state(2), crvol::MemberState::kSlow);
  EXPECT_EQ(volume.device(2).throughput_derating(), 2.0);
  EXPECT_EQ(injector.events_fired(), 1);

  engine.RunUntil(Milliseconds(25));
  EXPECT_EQ(volume.member_state(1), crvol::MemberState::kFailed);
  EXPECT_EQ(volume.failed_member(), 1);

  engine.RunUntil(Milliseconds(35));
  EXPECT_EQ(volume.member_state(2), crvol::MemberState::kHealthy);
  EXPECT_EQ(volume.device(2).throughput_derating(), 1.0);
  EXPECT_EQ(injector.events_fired(), 3);
  // Disk 1 stays fail-stopped: recovery was scripted only for disk 2.
  EXPECT_TRUE(volume.degraded());
}

TEST(FaultInjector, DestructionCancelsPendingEvents) {
  crsim::Engine engine;
  crvol::VolumeOptions options;
  options.disks = 2;
  crvol::StripedVolume volume(engine, options);
  {
    FaultPlan plan;
    plan.FailStop(Milliseconds(50), 0);
    FaultInjector injector(engine, volume, plan);
    injector.Arm();
  }
  engine.RunUntil(Milliseconds(100));
  EXPECT_FALSE(volume.degraded());
}

// ---------------------------------------------------------------------------
// End to end: the degradation controller on the full rig.

crmedia::MediaFile MakeMpeg1(crufs::Ufs& fs, const std::string& name,
                             crbase::Duration length) {
  auto file = crmedia::WriteMpeg1File(fs, name, length);
  CRAS_CHECK(file.ok()) << file.status().ToString();
  return *file;
}

struct Playback {
  cras::VolumeTestbedOptions options;
  std::unique_ptr<cras::VolumeTestbed> bed;
  std::vector<crmedia::MediaFile> files;
  std::vector<std::unique_ptr<cras::PlayerStats>> stats;
  std::vector<crsim::Task> players;

  explicit Playback(int streams) {
    options.volume.disks = 4;
    options.volume.parity = true;
    bed = std::make_unique<cras::VolumeTestbed>(options);
    bed->StartServers();
    for (int i = 0; i < streams; ++i) {
      files.push_back(MakeMpeg1(bed->fs, "movie" + std::to_string(i), Seconds(8)));
    }
    cras::PlayerOptions player_options;
    player_options.play_length = Seconds(6);
    for (int i = 0; i < streams; ++i) {
      player_options.start_delay = Milliseconds(37) * i;
      stats.push_back(std::make_unique<cras::PlayerStats>());
      players.push_back(cras::SpawnCrasPlayer(bed->kernel, bed->cras_server,
                                              files[static_cast<std::size_t>(i)],
                                              player_options, stats.back().get()));
    }
  }

  // The degraded admission model's verdict for this rig (one member down),
  // mirroring the demand CrasServer derives at crs_open.
  int DegradedCapacity() const {
    crvol::VolumeAdmissionModel model(
        options.cras.disk_params, 4, options.cras.interval, options.cras.max_read_bytes,
        bed->volume.stripe_unit_bytes());
    model.set_parity(true);
    model.SetMemberFailed(1, true);
    cras::StreamDemand demand;
    demand.rate_bytes_per_sec = files.front().index.WorstRate(options.cras.interval);
    demand.chunk_bytes = files.front().index.max_chunk_bytes();
    int n = 0;
    while (model.Admissible(
        std::vector<cras::StreamDemand>(static_cast<std::size_t>(n + 1), demand),
        options.cras.memory_budget_bytes)) {
      ++n;
    }
    return n;
  }
};

TEST(Degradation, KeptStreamsRideOutAMidPlaybackFailure) {
  // Well under the degraded capacity: losing a member must cost nothing but
  // reconstruction I/O — no shed stream, no missed frame, no blown deadline.
  Playback rig(12);
  ASSERT_LT(12, rig.DegradedCapacity());
  FaultPlan plan;
  plan.FailStop(Seconds(2), 1);
  FaultInjector injector(rig.bed->engine(), rig.bed->volume, plan);
  injector.Arm();

  rig.bed->engine().RunFor(Seconds(12));

  EXPECT_EQ(injector.events_fired(), 1);
  EXPECT_TRUE(rig.bed->volume.degraded());
  EXPECT_EQ(rig.bed->cras_server.stats().member_changes, 1);
  EXPECT_EQ(rig.bed->cras_server.stats().streams_shed, 0);
  for (const auto& s : rig.stats) {
    ASSERT_FALSE(s->open_rejected);
    EXPECT_FALSE(s->shed);
    EXPECT_EQ(s->frames_missed, 0);
    EXPECT_GT(s->frames_played, 0);
  }
  EXPECT_EQ(rig.bed->cras_server.stats().deadline_misses, 0);
  for (const cras::IntervalRecord& record : rig.bed->cras_server.interval_records()) {
    EXPECT_TRUE(record.completed_by_deadline);
  }
  // The failure actually bit: the survivors served reconstruction reads.
  EXPECT_GT(rig.bed->volume.stats().reconstruction_pieces, 0);
  // The dead member served nothing new after the drain; the survivors kept
  // going.
  const std::int64_t failed_sectors = rig.bed->volume.device(1).stats().sectors;
  rig.bed->engine().RunFor(Seconds(1));
  EXPECT_EQ(rig.bed->volume.device(1).stats().sectors, failed_sectors);
}

TEST(Degradation, OverloadedArrayShedsExactlyToTheDegradedCapacity) {
  // More streams than a 3-survivor array can carry: the controller must
  // shed the overload — and nothing more — and the kept streams must keep
  // every guarantee.
  constexpr int kStreams = 30;
  Playback rig(kStreams);
  const int capacity = rig.DegradedCapacity();
  ASSERT_GT(kStreams, capacity);
  FaultPlan plan;
  plan.FailStop(Seconds(2), 1);
  FaultInjector injector(rig.bed->engine(), rig.bed->volume, plan);
  injector.Arm();

  rig.bed->engine().RunFor(Seconds(14));

  const cras::ServerStats& stats = rig.bed->cras_server.stats();
  EXPECT_EQ(stats.streams_shed, kStreams - capacity);
  int shed = 0;
  for (const auto& s : rig.stats) {
    ASSERT_FALSE(s->open_rejected);
    if (s->shed) {
      ++shed;
      continue;
    }
    EXPECT_EQ(s->frames_missed, 0);
  }
  EXPECT_EQ(shed, kStreams - capacity);
  EXPECT_EQ(stats.deadline_misses, 0);

  // The shed/kept split is visible through the hub, and a "cras." prefix
  // query carries it without dragging the per-disk families along.
  const std::string json = rig.bed->hub.MetricsJson("cras.");
  EXPECT_NE(json.find("cras.streams_shed"), std::string::npos);
  EXPECT_NE(json.find("cras.streams_kept"), std::string::npos);
  EXPECT_EQ(json.find("disk.requests"), std::string::npos);
}

}  // namespace
}  // namespace crfault
