// Frame tracing: the telescoping stage decomposition and its conservation
// property (buckets sum exactly to end-to-end time), the bounded per-session
// ring, the SLO watchdog's burn-rate windows, and end-to-end attribution
// through the real server — disk path, cache path, and a lossy NPS link
// whose NAK machinery gives up on frames.

#include "src/obs/frame_trace.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/core/player.h"
#include "src/core/testbed.h"
#include "src/media/media_file.h"
#include "src/net/link.h"
#include "src/net/nps.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/obs.h"
#include "src/obs/slo.h"

namespace crobs {
namespace {

using crbase::Milliseconds;
using crbase::Seconds;

// ---------------------------------------------------------------------------
// Decompose: the telescoping decomposition of a single record.
// ---------------------------------------------------------------------------

TEST(Decompose, FullPathBucketsSumToEndToEnd) {
  FrameRecord record;
  // Every stage stamped, 10 ns apart: each delta folds into its own bucket,
  // except kPublished and kSent which share kBufferWait.
  for (int i = 0; i < kFrameStageCount; ++i) {
    record.stage[i] = 10 * i;
  }
  const FrameDecomposition d = Decompose(record);
  EXPECT_TRUE(d.monotone);
  EXPECT_EQ(d.end_to_end_ns, 70);
  EXPECT_EQ(d.unattributed_ns, 0);
  EXPECT_EQ(d.bucket_ns[static_cast<int>(StageBucket::kDiskQueue)], 10);
  EXPECT_EQ(d.bucket_ns[static_cast<int>(StageBucket::kDiskService)], 10);
  EXPECT_EQ(d.bucket_ns[static_cast<int>(StageBucket::kBufferWait)], 20);
  EXPECT_EQ(d.bucket_ns[static_cast<int>(StageBucket::kWire)], 10);
  EXPECT_EQ(d.bucket_ns[static_cast<int>(StageBucket::kRepair)], 10);
  EXPECT_EQ(d.bucket_ns[static_cast<int>(StageBucket::kPlayoutSlack)], 10);
  crbase::Duration sum = 0;
  for (const crbase::Duration b : d.bucket_ns) {
    sum += b;
  }
  EXPECT_EQ(sum, d.end_to_end_ns);
}

TEST(Decompose, SkippedStagesAttributeZeroTime) {
  // A cache hit: no disk service, no wire — only scheduled, published,
  // playout. The unstamped stages must contribute exactly nothing.
  FrameRecord record;
  record.stage[static_cast<int>(FrameStage::kScheduled)] = 100;
  record.stage[static_cast<int>(FrameStage::kPublished)] = 150;
  record.stage[static_cast<int>(FrameStage::kPlayout)] = 250;
  const FrameDecomposition d = Decompose(record);
  EXPECT_TRUE(d.monotone);
  EXPECT_EQ(d.end_to_end_ns, 150);
  EXPECT_EQ(d.unattributed_ns, 0);
  EXPECT_EQ(d.bucket_ns[static_cast<int>(StageBucket::kBufferWait)], 50);
  EXPECT_EQ(d.bucket_ns[static_cast<int>(StageBucket::kPlayoutSlack)], 100);
  EXPECT_EQ(d.bucket_ns[static_cast<int>(StageBucket::kDiskQueue)], 0);
  EXPECT_EQ(d.bucket_ns[static_cast<int>(StageBucket::kDiskService)], 0);
  EXPECT_EQ(d.bucket_ns[static_cast<int>(StageBucket::kWire)], 0);
  EXPECT_EQ(d.bucket_ns[static_cast<int>(StageBucket::kRepair)], 0);
}

TEST(Decompose, BackwardsStampSequenceIsNotMonotone) {
  FrameRecord record;
  record.stage[static_cast<int>(FrameStage::kScheduled)] = 100;
  record.stage[static_cast<int>(FrameStage::kDiskStart)] = 40;  // runs backwards
  const FrameDecomposition d = Decompose(record);
  EXPECT_FALSE(d.monotone);
}

// ---------------------------------------------------------------------------
// FrameTracer: registration, ring eviction, stamp accounting.
// ---------------------------------------------------------------------------

TEST(FrameTracer, DisabledTracerRegistersNothing) {
  crsim::Engine engine;
  Hub hub(engine);  // frames disabled by default
  EXPECT_FALSE(hub.frames().enabled());
  EXPECT_EQ(hub.frames().Register(1, "s1"), nullptr);
  EXPECT_EQ(hub.frames().stamps(), 0u);
}

TEST(FrameTracer, RingCollisionEvictsUnresolvedRecord) {
  crsim::Engine engine;
  Hub::Options options;
  options.frames.enabled = true;
  options.frames.ring_capacity = 8;
  Hub hub(engine, options);
  SessionTrace* trace = hub.frames().Register(1, "s1");
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(hub.frames().Register(1, "s1"), trace) << "find-or-create";

  trace->Stamp(0, FrameStage::kScheduled);  // never resolved
  trace->Stamp(8, FrameStage::kScheduled);  // same slot: evicts chunk 0
  EXPECT_EQ(hub.frames().Totals().frames_evicted, 1);
  EXPECT_EQ(trace->Find(0), nullptr);
  ASSERT_NE(trace->Find(8), nullptr);

  // A resolved record overwritten in place is not an eviction.
  trace->Deliver(8);
  trace->Stamp(16, FrameStage::kScheduled);
  EXPECT_EQ(hub.frames().Totals().frames_evicted, 1);
  EXPECT_EQ(hub.frames().Totals().frames_delivered, 1);
  EXPECT_GE(hub.frames().stamps(), 3u);
}

TEST(FrameTracer, FirstResolutionWins) {
  crsim::Engine engine;
  Hub::Options options;
  options.frames.enabled = true;
  Hub hub(engine, options);
  SessionTrace* trace = hub.frames().Register(7, "s7");
  ASSERT_NE(trace, nullptr);
  trace->Stamp(3, FrameStage::kPublished);
  trace->Deliver(3);
  trace->Miss(3, FrameStage::kPlayout);  // too late: already delivered
  trace->Deliver(3);                     // double delivery: no double count
  const StageAttribution& totals = hub.frames().Totals();
  EXPECT_EQ(totals.frames_delivered, 1);
  EXPECT_EQ(totals.frames_missed, 0);
  EXPECT_EQ(totals.unattributed_ns, 0);
}

// ---------------------------------------------------------------------------
// SloMonitor: burn-rate windows, slo_burn events, fast-burn flight dumps.
// ---------------------------------------------------------------------------

TEST(SloMonitor, SustainedMissesBurnTheBudgetAndFreezeADump) {
  crsim::Engine engine;
  Hub::Options options;
  options.frames.enabled = true;
  options.slo.enabled = true;
  options.slo.bucket_width = Seconds(1);
  options.slo.buckets = 4;
  options.slo.miss_budget = 0.01;
  options.slo.fast_burn = 8.0;
  options.slo.min_frames = 32;
  Hub hub(engine, options);

  const crbase::Duration buckets[kStageBucketCount] = {0, 0, 0, 5 * 1000 * 1000, 0, 0};
  engine.ScheduleAt(Milliseconds(500), [&] {
    for (int i = 0; i < 40; ++i) {
      hub.slo().OnFrameResolved(/*session=*/1, /*missed=*/true, /*e2e_ms=*/600.0,
                                buckets);
    }
  });
  // The next resolution lands in a later bucket: the rotation evaluates the
  // 100%-miss window against the 1% budget — burn 100x, far past fast_burn.
  engine.ScheduleAt(Milliseconds(1500), [&] {
    hub.slo().OnFrameResolved(1, false, 10.0, buckets);
  });
  engine.RunUntil(Seconds(2));

  EXPECT_GT(hub.slo().burn_events(), 0);
  EXPECT_GE(hub.slo().fast_burns(), 1);
  EXPECT_FALSE(hub.flight().dumps().empty()) << "fast burn must freeze a dump";
  bool saw_burn_event = false;
  for (const FlightEvent& event : hub.flight().events()) {
    saw_burn_event |= event.kind == FlightEventKind::kSloBurn;
  }
  EXPECT_TRUE(saw_burn_event);
  // The dominant stage the window accumulated is the wire bucket.
  EXPECT_EQ(hub.slo().DominantBucket(), StageBucket::kWire);
  const std::string state = hub.slo().StateJson();
  EXPECT_NE(state.find("\"burn_events\""), std::string::npos);
  EXPECT_NE(state.find("\"dominant_stage\": \"wire\""), std::string::npos);
}

TEST(SloMonitor, CleanTrafficBurnsNothing) {
  crsim::Engine engine;
  Hub::Options options;
  options.frames.enabled = true;
  options.slo.enabled = true;
  options.slo.min_frames = 8;
  Hub hub(engine, options);
  const crbase::Duration buckets[kStageBucketCount] = {};
  for (crbase::Time at : {Milliseconds(200), Milliseconds(1200), Milliseconds(2200)}) {
    engine.ScheduleAt(at, [&] {
      for (int i = 0; i < 20; ++i) {
        hub.slo().OnFrameResolved(1, false, 50.0, buckets);
      }
    });
  }
  engine.RunUntil(Seconds(3));
  EXPECT_EQ(hub.slo().burn_events(), 0);
  EXPECT_EQ(hub.slo().fast_burns(), 0);
  EXPECT_EQ(hub.slo().WindowMisses(), 0);
  EXPECT_GT(hub.slo().WindowFrames(), 0);
}

// ---------------------------------------------------------------------------
// Integration: the real server, disk path. Every frame a player consumes
// decomposes with zero unattributed time.
// ---------------------------------------------------------------------------

TEST(FrameTraceIntegration, PlayerRunConservesAttribution) {
  cras::TestbedOptions options;
  options.obs.frames.enabled = true;
  cras::Testbed bed(options);
  bed.StartServers();
  const auto file = *crmedia::WriteMpeg1File(bed.fs, "movie", Seconds(8));
  cras::PlayerStats stats;
  cras::PlayerOptions player_options;
  player_options.play_length = Seconds(6);
  crsim::Task player =
      cras::SpawnCrasPlayer(bed.kernel, bed.cras_server, file, player_options, &stats);
  bed.engine().RunFor(Seconds(12));

  ASSERT_GT(stats.frames_played, 0);
  const StageAttribution& totals = bed.hub.frames().Totals();
  EXPECT_EQ(totals.frames_delivered, stats.frames_played);
  EXPECT_EQ(totals.conservation_violations, 0);
  EXPECT_EQ(totals.unattributed_ns, 0);
  EXPECT_GT(totals.end_to_end_ns, 0);
  // The local disk path never touches the wire: all time sits in the disk,
  // buffer, and playout buckets.
  EXPECT_EQ(totals.bucket_ns[static_cast<int>(StageBucket::kWire)], 0);
  EXPECT_EQ(totals.bucket_ns[static_cast<int>(StageBucket::kRepair)], 0);
  EXPECT_GT(totals.bucket_ns[static_cast<int>(StageBucket::kPlayoutSlack)], 0);
  ASSERT_EQ(bed.hub.frames().Sessions().size(), 1u);
  EXPECT_EQ(bed.hub.frames().Sessions()[0]->totals().frames_delivered,
            stats.frames_played);
}

// ---------------------------------------------------------------------------
// Integration: cache path. A follower served from memory still decomposes
// with zero unattributed time, and its records carry the cache path tag.
// ---------------------------------------------------------------------------

TEST(FrameTraceIntegration, CacheHitFramesConserveAttribution) {
  cras::TestbedOptions options;
  options.obs.frames.enabled = true;
  options.cras.cache.enabled = true;
  options.cras.cache.prefix_length = Seconds(6);
  cras::Testbed bed(options);
  bed.StartServers();
  const auto file = *crmedia::WriteMpeg1File(bed.fs, "hot", Seconds(16));
  cras::PlayerStats a_stats, b_stats;
  cras::PlayerOptions a_options;
  a_options.play_length = Seconds(12);
  cras::PlayerOptions b_options;
  b_options.start_delay = Seconds(4);
  b_options.play_length = Seconds(8);
  crsim::Task a = cras::SpawnCrasPlayer(bed.kernel, bed.cras_server, file, a_options,
                                        &a_stats);
  crsim::Task b = cras::SpawnCrasPlayer(bed.kernel, bed.cras_server, file, b_options,
                                        &b_stats);
  bed.engine().RunFor(Seconds(20));

  ASSERT_GT(a_stats.frames_played, 0);
  ASSERT_GT(b_stats.frames_played, 0);
  const StageAttribution& totals = bed.hub.frames().Totals();
  EXPECT_EQ(totals.conservation_violations, 0);
  EXPECT_EQ(totals.unattributed_ns, 0);
  EXPECT_EQ(totals.frames_delivered, a_stats.frames_played + b_stats.frames_played);

  // The premise holds (the follower actually hit the cache), and at least
  // one surviving delivered record is tagged with the cache path.
  const crobs::RegistrySnapshot snapshot = bed.hub.metrics().Snapshot();
  const crobs::SeriesSnapshot* hits =
      snapshot.Find("cache.hit_chunks", {{"kind", "interval"}});
  ASSERT_NE(hits, nullptr);
  EXPECT_GT(hits->counter, 0);
  std::int64_t cache_path_frames = 0;
  for (const SessionTrace* session : bed.hub.frames().Sessions()) {
    for (std::int64_t chunk = 0; chunk < 1024; ++chunk) {
      const FrameRecord* record = session->Find(chunk);
      if (record != nullptr && record->path == FramePath::kCache &&
          record->outcome == FrameOutcome::kDelivered) {
        ++cache_path_frames;
      }
    }
  }
  EXPECT_GT(cache_path_frames, 0);
}

// ---------------------------------------------------------------------------
// Integration: lossy NPS link. Frames the NAK machinery abandons resolve as
// misses that still decompose with zero unattributed time.
// ---------------------------------------------------------------------------

TEST(FrameTraceIntegration, NakGiveUpFramesConserveAttribution) {
  cras::TestbedOptions bed_options;
  bed_options.obs.frames.enabled = true;
  cras::Testbed bed(bed_options);
  crrt::Kernel client_host(bed.engine(), crrt::Kernel::Options{});
  crnet::Link::Options forward_options;
  forward_options.impairments.loss_probability = 0.3;  // repair often futile
  crnet::Link forward(bed.engine(), forward_options);
  crnet::Link reverse(bed.engine());
  crnet::NpsReceiver receiver(client_host);
  crnet::NpsSender sender(bed.kernel, bed.cras_server, forward, receiver);
  receiver.ConnectReverse(reverse, sender);
  sender.AttachObs(&bed.hub, "nps");
  receiver.AttachObs(&bed.hub, "nps");
  bed.StartServers();
  const auto movie = *crmedia::WriteMpeg1File(bed.fs, "movie", Seconds(10));

  cras::SessionId session = cras::kInvalidSession;
  crsim::Task opener = bed.kernel.Spawn(
      "qtserver", crrt::kPriorityClient, [&](crrt::ThreadContext&) -> crsim::Task {
        cras::OpenParams params;
        params.inode = movie.inode;
        params.index = movie.index;
        auto opened = co_await bed.cras_server.Open(std::move(params));
        CRAS_CHECK(opened.ok());
        session = *opened;
        (void)co_await bed.cras_server.StartStream(
            session, bed.cras_server.SuggestedInitialDelay());
      });
  bed.engine().RunFor(Milliseconds(50));
  ASSERT_NE(session, cras::kInvalidSession);
  crsim::Task sender_task = sender.Start(session, &movie.index);

  std::int64_t frames_ok = 0;
  std::int64_t frames_missed = 0;
  crsim::Task player = client_host.Spawn(
      "qtclient", crrt::kPriorityClient, [&](crrt::ThreadContext& ctx) -> crsim::Task {
        const crbase::Duration delay =
            bed.cras_server.SuggestedInitialDelay() + Milliseconds(200);
        receiver.clock().Start(delay);
        co_await ctx.Sleep(delay);
        for (const crmedia::Chunk& chunk : movie.index.chunks()) {
          while (receiver.clock().Now() < chunk.timestamp) {
            co_await ctx.Sleep(Milliseconds(2));
          }
          if (receiver.Get(chunk.timestamp).has_value()) {
            ++frames_ok;
          } else {
            ++frames_missed;
          }
        }
      });
  bed.engine().RunFor(Seconds(10) + Seconds(8));

  // 30% loss defeats some repairs: the receiver abandoned chunks, and every
  // abandoned frame resolved as a miss whose buckets still sum exactly.
  ASSERT_GT(receiver.stats().chunks_abandoned, 0);
  ASSERT_GT(frames_missed, 0);
  const StageAttribution& totals = bed.hub.frames().Totals();
  // Total resolution: no frame may linger in-flight forever — even a chunk
  // whose every fragment was wire-lost during a sender stall resolves
  // through the sender's durable send log.
  EXPECT_EQ(totals.frames_delivered + totals.frames_missed,
            static_cast<std::int64_t>(movie.index.count()));
  EXPECT_EQ(totals.frames_delivered, frames_ok);
  EXPECT_EQ(totals.frames_missed, frames_missed);
  EXPECT_GT(totals.frames_missed, 0);
  EXPECT_EQ(totals.conservation_violations, 0);
  EXPECT_EQ(totals.unattributed_ns, 0);
  std::int64_t missed_total = 0;
  for (const std::int64_t at : totals.missed_at) {
    missed_total += at;
  }
  EXPECT_EQ(missed_total, totals.frames_missed);
  EXPECT_GT(totals.missed_at[static_cast<int>(FrameStage::kArrived)] +
                totals.missed_at[static_cast<int>(FrameStage::kCompleted)],
            0)
      << "give-ups must record the stage the frame provably reached";
  bool saw_give_up = false;
  for (const FlightEvent& event : bed.hub.flight().events()) {
    saw_give_up |= event.kind == FlightEventKind::kNakGiveUp;
  }
  EXPECT_TRUE(saw_give_up);
}

}  // namespace
}  // namespace crobs
