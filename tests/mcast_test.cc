// Multicast delivery groups: XOR repair codec round trips, group
// bookkeeping, coded repair fixing different losses at different receivers
// with one packet, the late-joiner bridge from the pinned prefix, the
// boundary-chunk deadline rule, and the demote-to-unicast path for a
// receiver that falls past the repair window. The degradation invariant
// mirrors the cache's: a member the group can no longer carry is demoted to
// unicast disk service and re-settled — never silently missed.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/random.h"
#include "src/core/cras.h"
#include "src/core/testbed.h"
#include "src/fault/fault.h"
#include "src/mcast/group_manager.h"
#include "src/mcast/group_transport.h"
#include "src/mcast/xor_codec.h"
#include "src/media/media_file.h"
#include "src/net/link.h"
#include "src/net/nps.h"

namespace crmcast {
namespace {

using crbase::Milliseconds;
using crbase::Seconds;

// ---------------------------------------------------------------------------
// Unit: XOR parity codec.

TEST(XorCodec, RoundTripRecoversAnySingleMissingFragment) {
  crbase::Rng rng(0xc0ded);
  for (int iter = 0; iter < 40; ++iter) {
    const std::size_t count = 2 + static_cast<std::size_t>(rng.NextBelow(16));
    std::vector<std::vector<std::uint8_t>> fragments(count);
    for (auto& fragment : fragments) {
      fragment.resize(1 + static_cast<std::size_t>(rng.NextBelow(2000)));
      for (auto& byte : fragment) {
        byte = static_cast<std::uint8_t>(rng.NextBelow(256));
      }
    }
    const std::vector<std::uint8_t> parity = XorParity(fragments);
    const std::size_t missing = static_cast<std::size_t>(rng.NextBelow(count));
    std::vector<const std::vector<std::uint8_t>*> present;
    for (std::size_t i = 0; i < count; ++i) {
      if (i != missing) {
        present.push_back(&fragments[i]);
      }
    }
    const std::vector<std::uint8_t> recovered =
        XorRecover(parity, present, fragments[missing].size());
    EXPECT_EQ(recovered, fragments[missing]) << "iteration " << iter;
  }
}

TEST(XorCodec, ParityBytesIsTheLongestFragment) {
  EXPECT_EQ(XorParityBytes({100, 8192, 512}), 8192);
  EXPECT_EQ(XorParityBytes({64}), 64);
  EXPECT_EQ(XorParityBytes({}), 0);
}

// ---------------------------------------------------------------------------
// Unit: group membership bookkeeping and join placement.

TEST(GroupManager, PlanJoinBatchesBeforeShippingAndBridgesAfter) {
  McastOptions options;
  options.enabled = true;
  options.merge_margin_chunks = 2;
  GroupManager mgr(options);

  // No group yet: the caller must found one.
  EXPECT_FALSE(mgr.PlanJoin(/*title=*/7, /*prefix_end_chunk=*/0).joined);

  const GroupId group = mgr.CreateGroup(7, /*feed=*/100);
  mgr.AddMember(group, 1, 0);
  EXPECT_EQ(mgr.GroupOf(1), group);
  EXPECT_TRUE(mgr.IsFeed(100));
  EXPECT_EQ(mgr.FeedOf(group), 100);

  // Feed has not shipped: anyone batches in at merge 0, no prefix needed.
  JoinPlan plan = mgr.PlanJoin(7, 0);
  EXPECT_TRUE(plan.joined);
  EXPECT_EQ(plan.group, group);
  EXPECT_EQ(plan.merge_chunk, 0);

  // Rolling feed: the merge point is cursor + margin, and joining needs the
  // pinned prefix to cover the bridge.
  mgr.NoteShipCursor(group, 10);
  EXPECT_FALSE(mgr.PlanJoin(7, /*prefix_end_chunk=*/5).joined)
      << "prefix too short to bridge to chunk 12";
  plan = mgr.PlanJoin(7, /*prefix_end_chunk=*/40);
  EXPECT_TRUE(plan.joined);
  EXPECT_EQ(plan.merge_chunk, 12);

  // Another title never matches.
  EXPECT_FALSE(mgr.PlanJoin(8, 40).joined);

  // Departures: the last member out hands the feed back.
  mgr.AddMember(group, 2, 12);
  EXPECT_EQ(mgr.RemoveMember(1, "close"), kNoSession);
  EXPECT_EQ(mgr.RemoveMember(2, "close"), 100);
  EXPECT_FALSE(mgr.Alive(group));
  EXPECT_EQ(mgr.stats().groups_formed, 1);
  EXPECT_EQ(mgr.stats().members_left, 2);
}

// ---------------------------------------------------------------------------
// Unit: the shared deadline rule, exactly at the boundary chunk.
//
// Regression: the NAK give-up check, the receiver drop rule, and grouped
// repair once disagreed about a chunk whose playout clock sits exactly on
// timestamp + duration. The shared crnet::ChunkDeadline helper makes the
// rule single-sourced: still repairable AT the deadline, dead strictly past
// it.

TEST(ChunkDeadline, BufferedAndIndexChunksAgree) {
  cras::BufferedChunk buffered;
  buffered.timestamp = Seconds(3);
  buffered.duration = Milliseconds(250);
  crmedia::Chunk indexed;
  indexed.timestamp = Seconds(3);
  indexed.duration = Milliseconds(250);
  EXPECT_EQ(crnet::ChunkDeadline(buffered), Seconds(3) + Milliseconds(250));
  EXPECT_EQ(crnet::ChunkDeadline(buffered), crnet::ChunkDeadline(indexed));
}

TEST(ChunkDeadline, ReceiverKeepsTheBoundaryChunkRepairable) {
  cras::Testbed bed;  // engine + kernel; no servers needed
  const auto movie = *crmedia::WriteMpeg1File(bed.fs, "m", Seconds(4));
  GroupReceiver receiver(bed.kernel, &movie.index);
  crsim::Task reporter = receiver.Start();

  // A partial chunk 0 is pending; pin the (stopped) logical clock exactly
  // on its playout deadline. The sweep must NOT abandon it.
  crnet::NpsFragment fragment;
  fragment.seq = 0;
  fragment.frag_index = 0;
  fragment.frag_count = 2;
  fragment.bytes = 1024;
  fragment.chunk.chunk_index = 0;
  fragment.chunk.timestamp = movie.index.at(0).timestamp;
  fragment.chunk.duration = movie.index.at(0).duration;
  fragment.chunk.size = 2048;
  fragment.multicast = true;
  receiver.OnFragment(fragment);
  ASSERT_EQ(receiver.incomplete_chunks(), 1u);

  receiver.clock().SeekTo(crnet::ChunkDeadline(movie.index.at(0)));
  bed.engine().RunFor(Milliseconds(100));
  EXPECT_EQ(receiver.stats().chunks_abandoned, 0)
      << "a chunk is still repairable exactly at its deadline";
  EXPECT_EQ(receiver.incomplete_chunks(), 1u);

  // One tick past the deadline: dead everywhere.
  receiver.clock().SeekTo(crnet::ChunkDeadline(movie.index.at(0)) + 1);
  bed.engine().RunFor(Milliseconds(100));
  EXPECT_EQ(receiver.stats().chunks_abandoned, 1);
  EXPECT_EQ(receiver.incomplete_chunks(), 0u);
  receiver.Stop();
  bed.engine().RunFor(Milliseconds(100));
}

// ---------------------------------------------------------------------------
// Unit: one parity packet fixes a different loss at each receiver.

TEST(GroupTransport, OneRepairPacketFixesDifferentLossesAtTwoReceivers) {
  cras::Testbed bed;
  const auto movie = *crmedia::WriteMpeg1File(bed.fs, "m", Seconds(4));
  GroupReceiver r1(bed.kernel, &movie.index);
  GroupReceiver r2(bed.kernel, &movie.index);

  auto fragment = [&](std::uint64_t seq, int index) {
    crnet::NpsFragment f;
    f.seq = seq;
    f.frag_index = index;
    f.frag_count = 2;
    f.bytes = 4096;
    f.chunk.chunk_index = static_cast<std::int64_t>(seq);
    f.chunk.timestamp = movie.index.at(seq).timestamp;
    f.chunk.duration = movie.index.at(seq).duration;
    f.chunk.size = 8192;
    f.multicast = true;
    return f;
  };
  // r1 misses (0,1) but holds chunk 1 complete; r2 holds chunk 0 complete
  // and misses (1,1).
  r1.OnFragment(fragment(0, 0));
  r1.OnFragment(fragment(1, 0));
  r1.OnFragment(fragment(1, 1));
  r2.OnFragment(fragment(0, 0));
  r2.OnFragment(fragment(0, 1));
  r2.OnFragment(fragment(1, 0));
  ASSERT_EQ(r1.stats().chunks_received, 1);
  ASSERT_EQ(r2.stats().chunks_received, 1);

  RepairPacket packet;
  for (std::uint64_t seq : {std::uint64_t{0}, std::uint64_t{1}}) {
    RepairRef ref;
    ref.seq = seq;
    ref.frag_index = 1;
    ref.frag_count = 2;
    ref.bytes = 4096;
    ref.chunk = fragment(seq, 1).chunk;
    packet.window.push_back(ref);
  }
  packet.bytes = 4096 + 96;
  r1.OnRepair(packet);
  r2.OnRepair(packet);

  EXPECT_EQ(r1.stats().repair_decodes, 1);
  EXPECT_EQ(r2.stats().repair_decodes, 1);
  EXPECT_EQ(r1.stats().chunks_received, 2) << "parity completed chunk 0 at r1";
  EXPECT_EQ(r2.stats().chunks_received, 2) << "parity completed chunk 1 at r2";
  EXPECT_EQ(r1.stats().repair_decode_failed, 0);
  EXPECT_EQ(r2.stats().repair_decode_failed, 0);

  // A second copy of the same parity is useless now: nothing is absent.
  r1.OnRepair(packet);
  EXPECT_EQ(r1.stats().repair_useless, 1);
}

// ---------------------------------------------------------------------------
// Integration rig: grouped viewers over a shared forward link.

struct Viewer {
  cras::SessionId session = cras::kInvalidSession;
  std::unique_ptr<GroupReceiver> receiver;
  std::unique_ptr<crnet::Link> reverse;
  std::int64_t frames_ok = 0;
  std::int64_t frames_missed = 0;
};

cras::TestbedOptions GroupedTestbedOptions() {
  cras::TestbedOptions options;
  options.cras.mcast.enabled = true;
  options.cras.cache.enabled = true;
  options.cras.cache.pin_min_score = 0.5;  // first open pins the prefix
  options.cras.cache.prefix_length = Seconds(20);
  options.cras.memory_budget_bytes = 64 * crbase::kMiB;
  return options;
}

// Opens a grouped viewer, wires its receiver to the sender, and spawns a
// player that consumes every chunk by logical time.
void SpawnViewer(cras::Testbed& bed, GroupSender& sender, crnet::Link& forward,
                 const crmedia::MediaFile& movie, crbase::Duration open_at,
                 crbase::Duration extra_delay, Viewer* viewer, std::vector<crsim::Task>* tasks) {
  (void)forward;
  viewer->receiver = std::make_unique<GroupReceiver>(bed.kernel, &movie.index);
  viewer->reverse = std::make_unique<crnet::Link>(bed.engine());
  tasks->push_back(bed.kernel.Spawn(
      "viewer", crrt::kPriorityClient, [&, open_at, extra_delay, viewer, tasks](
                                           crrt::ThreadContext& ctx) -> crsim::Task {
        co_await ctx.Sleep(open_at);
        cras::OpenParams params;
        params.inode = movie.inode;
        params.index = movie.index;
        params.grouped = true;
        auto opened = co_await bed.cras_server.Open(std::move(params));
        CRAS_CHECK(opened.ok()) << opened.status().ToString();
        viewer->session = *opened;
        sender.AddMember(viewer->session, *viewer->receiver);
        viewer->receiver->ConnectReverse(*viewer->reverse, sender, viewer->session);
        tasks->push_back(viewer->receiver->Start());
        const crbase::Duration delay =
            bed.cras_server.SuggestedInitialDelay() + extra_delay;
        (void)co_await bed.cras_server.StartStream(viewer->session, delay);
        // The playout clock trails the session clock by a little slack, so
        // an interval-boundary chunk published exactly at its timestamp
        // still crosses the wire in time (the standard remote-client lag).
        const crbase::Duration playout = delay + Milliseconds(200);
        viewer->receiver->clock().Start(playout);
        co_await ctx.Sleep(playout);
        for (const crmedia::Chunk& chunk : movie.index.chunks()) {
          while (viewer->receiver->clock().Now() < chunk.timestamp) {
            co_await ctx.Sleep(Milliseconds(2));
          }
          if (viewer->receiver->Get(chunk.timestamp).has_value()) {
            ++viewer->frames_ok;
          } else {
            ++viewer->frames_missed;
          }
        }
        viewer->receiver->Stop();
      }));
}

TEST(McastIntegration, LateJoinerBridgesFromPrefixThenMerges) {
  cras::Testbed bed(GroupedTestbedOptions());
  bed.StartServers();
  const auto movie = *crmedia::WriteMpeg1File(bed.fs, "hot", Seconds(12));
  crnet::Link::Options forward_options;
  forward_options.bandwidth_bytes_per_sec = 12.5e6;  // fast LAN, kept clean
  crnet::Link forward(bed.engine(), forward_options);
  GroupSender sender(bed.kernel, bed.cras_server, forward);
  sender.AttachObs(&bed.hub, "g1");

  Viewer a, b;
  std::vector<crsim::Task> tasks;
  SpawnViewer(bed, sender, forward, movie, /*open_at=*/0, /*extra_delay=*/0, &a, &tasks);
  SpawnViewer(bed, sender, forward, movie, /*open_at=*/Seconds(2), /*extra_delay=*/0, &b,
              &tasks);
  // Let A's open land, then start the group's transmitter.
  bed.engine().RunFor(Milliseconds(100));
  ASSERT_NE(a.session, cras::kInvalidSession);
  GroupManager* mgr = bed.cras_server.mcast_groups();
  ASSERT_NE(mgr, nullptr);
  const GroupId group = mgr->GroupOf(a.session);
  ASSERT_NE(group, kNoGroup);
  tasks.push_back(sender.Start(group, &movie.index));
  bed.engine().RunFor(Seconds(20));

  // B joined A's group as a late joiner with a real bridge.
  ASSERT_NE(b.session, cras::kInvalidSession);
  EXPECT_GT(sender.stats().patch_chunks, 0) << "the bridge was served unicast";
  EXPECT_GT(sender.stats().deduped_chunk_reads, 0) << "the fan-out shared disk reads";
  EXPECT_GT(sender.stats().chunks_multicast, 0);

  // Both viewers complete with nothing missed, nothing shed.
  EXPECT_EQ(a.frames_missed, 0);
  EXPECT_EQ(b.frames_missed, 0);
  EXPECT_EQ(a.frames_ok + a.frames_missed,
            static_cast<std::int64_t>(movie.index.count()));
  EXPECT_EQ(b.frames_ok + b.frames_missed,
            static_cast<std::int64_t>(movie.index.count()));
  EXPECT_EQ(bed.cras_server.stats().streams_shed, 0);
  EXPECT_EQ(bed.cras_server.stats().deadline_misses, 0);

  // Flight events and prefix-filtered metrics tell the story.
  bool saw_formed = false;
  bool saw_joined = false;
  std::int64_t late_merge = 0;
  for (const crobs::FlightEvent& event : bed.hub.flight().events()) {
    saw_formed |= event.kind == crobs::FlightEventKind::kGroupFormed;
    if (event.kind == crobs::FlightEventKind::kGroupJoined) {
      saw_joined = true;
      late_merge = std::max<std::int64_t>(late_merge, event.value);
    }
  }
  EXPECT_TRUE(saw_formed);
  EXPECT_TRUE(saw_joined);
  EXPECT_GT(late_merge, 0) << "the late joiner's merge point is past the start";
  const std::string mcast_metrics = bed.hub.MetricsJson("mcast.");
  EXPECT_NE(mcast_metrics.find("mcast.tx_chunks"), std::string::npos);
  EXPECT_NE(mcast_metrics.find("mcast.deduped_chunk_reads"), std::string::npos);
  EXPECT_EQ(mcast_metrics.find("link."), std::string::npos)
      << "prefix filtering leaked foreign metrics";
}

// ---------------------------------------------------------------------------
// Integration: a receiver past the repair window demotes to unicast.

TEST(McastIntegration, ReceiverPastRepairWindowDemotesAndResettles) {
  cras::Testbed bed(GroupedTestbedOptions());
  bed.StartServers();
  const auto movie = *crmedia::WriteMpeg1File(bed.fs, "hot", Seconds(10));
  crnet::Link::Options forward_options;
  forward_options.bandwidth_bytes_per_sec = 12.5e6;
  crnet::Link forward(bed.engine(), forward_options);
  GroupSender::Options sender_options;
  sender_options.repair_window_chunks = 4;  // a tiny window, easy to fall past
  GroupSender sender(bed.kernel, bed.cras_server, forward, sender_options);

  // A starts promptly; B joins the same (not yet shipping) group but delays
  // its playout by several seconds, so its clock trails the feed far beyond
  // the four-chunk repair window.
  Viewer a, b;
  std::vector<crsim::Task> tasks;
  SpawnViewer(bed, sender, forward, movie, /*open_at=*/0, /*extra_delay=*/0, &a, &tasks);
  SpawnViewer(bed, sender, forward, movie, /*open_at=*/Milliseconds(20),
              /*extra_delay=*/Seconds(5), &b, &tasks);
  bed.engine().RunFor(Milliseconds(100));
  ASSERT_NE(a.session, cras::kInvalidSession);
  ASSERT_NE(b.session, cras::kInvalidSession);
  GroupManager* mgr = bed.cras_server.mcast_groups();
  const GroupId group = mgr->GroupOf(a.session);
  ASSERT_EQ(mgr->GroupOf(b.session), group) << "B batched into A's group";
  tasks.push_back(sender.Start(group, &movie.index));

  // Run until the feed has multicast well past the window, then claim B
  // lost chunk 0. The store pruned it long ago, but B's clock says it is
  // still repairable: that is the fell-behind signal.
  bed.engine().RunFor(Seconds(4));
  ASSERT_GT(sender.stats().chunks_multicast, 4);
  LossReport report;
  report.member = b.session;
  report.entries.push_back(LossReportEntry{0, {}});
  sender.OnLossReport(report);
  bed.engine().RunFor(Seconds(14));

  EXPECT_EQ(sender.stats().members_demoted, 1);
  EXPECT_EQ(mgr->GroupOf(b.session), kNoGroup) << "B left the group";
  EXPECT_GT(sender.stats().unicast_chunks, 0) << "B was carried unicast after the demote";
  bool saw_demote = false;
  for (const crobs::FlightEvent& event : bed.hub.flight().events()) {
    if (event.kind == crobs::FlightEventKind::kGroupLeft &&
        event.detail == "behind_window") {
      saw_demote = true;
    }
  }
  EXPECT_TRUE(saw_demote);
  // Never a silent miss: B still completes every frame, via disk + unicast.
  EXPECT_EQ(b.frames_missed, 0);
  EXPECT_EQ(b.frames_ok, static_cast<std::int64_t>(movie.index.count()));
  EXPECT_EQ(a.frames_missed, 0);
  EXPECT_EQ(bed.cras_server.stats().deadline_misses, 0);
}

// ---------------------------------------------------------------------------
// Chaos overlap: the other member crashes while a demote is re-settling.

TEST(McastIntegration, ClientCrashDuringDemoteResettleConservesMembership) {
  // B falls behind the repair window and is demoted to unicast; while that
  // re-settle is still fresh, A — the group's only other member — crashes
  // abruptly (no Close, heartbeats just stop). The lease reaper must
  // collect A, the group must dissolve with joins == leaves, and B must
  // still complete every frame via unicast disk service.
  cras::TestbedOptions options = GroupedTestbedOptions();
  options.cras.lease_period = Milliseconds(300);
  cras::Testbed bed(options);
  bed.StartServers();
  const auto movie = *crmedia::WriteMpeg1File(bed.fs, "hot", Seconds(10));
  crnet::Link::Options forward_options;
  forward_options.bandwidth_bytes_per_sec = 12.5e6;
  crnet::Link forward(bed.engine(), forward_options);
  GroupSender::Options sender_options;
  sender_options.repair_window_chunks = 4;
  GroupSender sender(bed.kernel, bed.cras_server, forward, sender_options);
  sender.AttachObs(&bed.hub, "g1");

  Viewer a, b;
  std::vector<crsim::Task> tasks;
  SpawnViewer(bed, sender, forward, movie, /*open_at=*/0, /*extra_delay=*/0, &a, &tasks);
  SpawnViewer(bed, sender, forward, movie, /*open_at=*/Milliseconds(20),
              /*extra_delay=*/Seconds(5), &b, &tasks);
  bed.engine().RunFor(Milliseconds(100));
  ASSERT_NE(a.session, cras::kInvalidSession);
  ASSERT_NE(b.session, cras::kInvalidSession);
  GroupManager* mgr = bed.cras_server.mcast_groups();
  const GroupId group = mgr->GroupOf(a.session);
  ASSERT_EQ(mgr->GroupOf(b.session), group);
  tasks.push_back(sender.Start(group, &movie.index));

  // Leases: both viewers heartbeat until told otherwise.
  crnet::Link heartbeat_link(bed.engine());
  crnet::LeaseClient::Options hb;
  hb.period = Milliseconds(100);
  std::vector<std::unique_ptr<crnet::LeaseClient>> leases;
  leases.push_back(std::make_unique<crnet::LeaseClient>(
      bed.kernel, bed.cras_server, heartbeat_link, a.session, hb));
  leases.push_back(std::make_unique<crnet::LeaseClient>(
      bed.kernel, bed.cras_server, heartbeat_link, b.session, hb));
  tasks.push_back(leases[0]->Start());
  tasks.push_back(leases[1]->Start());

  // The crash is scripted like any other fault: the handler kills the
  // client's heartbeat generator — no Close is ever sent.
  crfault::FaultPlan plan;
  plan.ClientCrash(Seconds(4) + Milliseconds(10), /*client=*/0);
  crfault::FaultInjector injector(bed.engine(), /*volume=*/nullptr,
                                  std::vector<crnet::Link*>{}, plan);
  injector.SetClientCrashHandler(
      [&leases](int client) { leases[static_cast<std::size_t>(client)]->Stop(); });
  injector.AttachObs(&bed.hub);
  injector.Arm();

  // Demote B (stale loss report) at 4 s; A's crash lands 10 ms later, while
  // the demote's re-settle is the freshest admission state.
  bed.engine().RunFor(Seconds(4) - Milliseconds(100));
  ASSERT_GT(sender.stats().chunks_multicast, 4);
  LossReport report;
  report.member = b.session;
  report.entries.push_back(LossReportEntry{0, {}});
  sender.OnLossReport(report);
  bed.engine().RunFor(Seconds(16));

  ASSERT_EQ(injector.events_fired(), 1);
  EXPECT_EQ(sender.stats().members_demoted, 1);
  EXPECT_EQ(mgr->GroupOf(b.session), kNoGroup);
  // A was collected by the reaper, not closed.
  EXPECT_TRUE(bed.cras_server.WasReaped(a.session));
  EXPECT_FALSE(bed.cras_server.HasSession(a.session));
  // Membership conservation under churn: every join has a matching leave
  // (B's demotion + A's reap), and no group survives its members.
  EXPECT_EQ(mgr->stats().members_joined, mgr->stats().members_left);
  EXPECT_EQ(mgr->stats().groups_formed, mgr->stats().groups_dissolved);
  EXPECT_EQ(mgr->group_count(), 0u);
  // B was never silently missed: demoted mid-crash, it still completes.
  EXPECT_EQ(b.frames_missed, 0);
  EXPECT_EQ(b.frames_ok, static_cast<std::int64_t>(movie.index.count()));
  // The causal chain is on the record: crash -> reap, demote -> group-left.
  bool saw_crash = false;
  bool saw_reap = false;
  bool saw_demote = false;
  for (const crobs::FlightEvent& event : bed.hub.flight().events()) {
    saw_crash |= event.kind == crobs::FlightEventKind::kFaultInjected &&
                 event.detail == "client_crash";
    saw_reap |= event.kind == crobs::FlightEventKind::kLeaseReap &&
                event.a == static_cast<std::int64_t>(a.session);
    saw_demote |= event.kind == crobs::FlightEventKind::kGroupLeft &&
                  event.detail == "behind_window";
  }
  EXPECT_TRUE(saw_crash);
  EXPECT_TRUE(saw_reap);
  EXPECT_TRUE(saw_demote);
}

// ---------------------------------------------------------------------------
// Fault scripting against grouped links: one plan degrades every link.

TEST(FaultInjection, MultiLinkPlanAppliesToEveryLink) {
  crsim::Engine engine;
  crnet::Link l1(engine), l2(engine);
  crfault::FaultPlan plan;
  plan.LinkLoss(Milliseconds(10), 0.25).LinkRecover(Milliseconds(20));
  crfault::FaultInjector injector(engine, /*volume=*/nullptr, {&l1, &l2}, plan);
  injector.Arm();
  engine.RunFor(Milliseconds(15));
  EXPECT_EQ(l1.impairments().loss_probability, 0.25);
  EXPECT_EQ(l2.impairments().loss_probability, 0.25);
  engine.RunFor(Milliseconds(10));
  EXPECT_EQ(l1.impairments().loss_probability, 0.0);
  EXPECT_EQ(l2.impairments().loss_probability, 0.0);
  EXPECT_EQ(injector.events_fired(), 2);
}

}  // namespace
}  // namespace crmcast
