// Control-file serialization and parsing (§2.5).

#include "src/media/control_file.h"

#include <gtest/gtest.h>

#include "src/base/random.h"
#include "src/media/media_file.h"

namespace crmedia {
namespace {

using crbase::Seconds;

TEST(ControlFile, RoundTripsCbrIndex) {
  const ChunkIndex original = BuildCbrIndex(kMpeg1BytesPerSec, 30.0, Seconds(3));
  const std::string text = SerializeControlFile(original);
  auto parsed = ParseControlFile(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->count(), original.count());
  for (std::size_t i = 0; i < original.count(); ++i) {
    EXPECT_EQ(parsed->at(i).offset, original.at(i).offset);
    EXPECT_EQ(parsed->at(i).size, original.at(i).size);
    EXPECT_EQ(parsed->at(i).timestamp, original.at(i).timestamp);
    EXPECT_EQ(parsed->at(i).duration, original.at(i).duration);
  }
}

TEST(ControlFile, RoundTripsVbrIndex) {
  crbase::Rng rng(77);
  const ChunkIndex original = BuildVbrIndex(kMpeg1BytesPerSec, 0.5, 30.0, Seconds(2), rng);
  auto parsed = ParseControlFile(SerializeControlFile(original));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->total_bytes(), original.total_bytes());
  EXPECT_EQ(parsed->total_duration(), original.total_duration());
  EXPECT_EQ(parsed->max_chunk_bytes(), original.max_chunk_bytes());
}

TEST(ControlFile, HeaderStartsWithMagic) {
  const ChunkIndex index = BuildCbrIndex(kMpeg1BytesPerSec, 30.0, Seconds(1));
  const std::string text = SerializeControlFile(index);
  EXPECT_EQ(text.rfind("CRASCTL 1 30\n", 0), 0u);
}

TEST(ControlFile, RejectsEmpty) {
  EXPECT_FALSE(ParseControlFile("").ok());
}

TEST(ControlFile, RejectsBadMagic) {
  auto result = ParseControlFile("NOTCRAS 1 0\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("bad header"), std::string::npos);
}

TEST(ControlFile, RejectsUnsupportedVersion) {
  auto result = ParseControlFile("CRASCTL 9 0\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("version"), std::string::npos);
}

TEST(ControlFile, RejectsTruncatedBody) {
  const ChunkIndex index = BuildCbrIndex(kMpeg1BytesPerSec, 30.0, Seconds(1));
  std::string text = SerializeControlFile(index);
  text.resize(text.size() / 2);
  // Either truncated mid-line (parse failure) or missing lines.
  EXPECT_FALSE(ParseControlFile(text).ok());
}

TEST(ControlFile, RejectsNonNumericFields) {
  EXPECT_FALSE(ParseControlFile("CRASCTL 1 1\n0 abc 0 100\n").ok());
}

TEST(ControlFile, RejectsNonPositiveSizeOrDuration) {
  EXPECT_FALSE(ParseControlFile("CRASCTL 1 1\n0 0 0 100\n").ok());
  EXPECT_FALSE(ParseControlFile("CRASCTL 1 1\n0 100 0 0\n").ok());
}

TEST(ControlFile, RejectsBrokenOffsetChain) {
  auto result = ParseControlFile("CRASCTL 1 2\n0 100 0 50\n150 100 50 50\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("cumulative-sum"), std::string::npos);
  EXPECT_NE(result.status().message().find("line 3"), std::string::npos);
}

TEST(ControlFile, RejectsBrokenTimestampChain) {
  EXPECT_FALSE(ParseControlFile("CRASCTL 1 2\n0 100 0 50\n100 100 60 50\n").ok());
}

TEST(ControlFile, AcceptsMinimalValidFile) {
  auto result = ParseControlFile("CRASCTL 1 1\n0 100 0 50\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->count(), 1u);
  EXPECT_EQ(result->at(0).size, 100);
}

}  // namespace
}  // namespace crmedia
