// Chunk index, stream builders, media files, and load generators.

#include "src/media/chunk_index.h"

#include <gtest/gtest.h>

#include "src/base/bytes.h"
#include "src/disk/device.h"
#include "src/disk/driver.h"
#include "src/media/load.h"
#include "src/media/media_file.h"

namespace crmedia {
namespace {

using crbase::Milliseconds;
using crbase::Seconds;

TEST(ChunkIndex, CbrBuilderProducesUniformFrames) {
  const ChunkIndex index = BuildCbrIndex(kMpeg1BytesPerSec, 30.0, Seconds(10));
  EXPECT_EQ(index.count(), 300u);
  EXPECT_EQ(index.at(0).size, 6250);  // 187500 B/s / 30 fps
  EXPECT_EQ(index.at(0).duration, crbase::SecondsF(1.0 / 30.0));
  EXPECT_NEAR(index.average_rate(), kMpeg1BytesPerSec, 1.0);
  EXPECT_EQ(index.max_chunk_bytes(), 6250);
}

TEST(ChunkIndex, TimestampsAreCumulativeDurations) {
  const ChunkIndex index = BuildCbrIndex(kMpeg1BytesPerSec, 30.0, Seconds(1));
  Time expected = 0;
  for (const Chunk& c : index.chunks()) {
    EXPECT_EQ(c.timestamp, expected);
    expected += c.duration;
  }
}

TEST(ChunkIndex, OffsetsAreBackToBack) {
  crbase::Rng rng(3);
  const ChunkIndex index = BuildVbrIndex(kMpeg1BytesPerSec, 0.4, 30.0, Seconds(5), rng);
  std::int64_t expected = 0;
  for (const Chunk& c : index.chunks()) {
    EXPECT_EQ(c.offset, expected);
    expected += c.size;
  }
  EXPECT_EQ(index.total_bytes(), expected);
}

TEST(ChunkIndex, VbrWorstRateExceedsAverage) {
  crbase::Rng rng(17);
  const ChunkIndex index = BuildVbrIndex(kMpeg1BytesPerSec, 0.5, 30.0, Seconds(30), rng);
  const double avg = index.average_rate();
  const double worst = index.WorstRate(Milliseconds(500));
  EXPECT_NEAR(avg, kMpeg1BytesPerSec, kMpeg1BytesPerSec * 0.1);
  EXPECT_GT(worst, avg * 1.1);  // the §3.2 buffer-waste gap
}

TEST(ChunkIndex, CbrWorstRateEqualsAverage) {
  const ChunkIndex index = BuildCbrIndex(kMpeg1BytesPerSec, 30.0, Seconds(10));
  EXPECT_NEAR(index.WorstRate(Seconds(1)), index.average_rate(),
              index.average_rate() * 0.05);
}

TEST(ChunkIndex, FindByTime) {
  const ChunkIndex index = BuildCbrIndex(kMpeg1BytesPerSec, 30.0, Seconds(1));
  EXPECT_EQ(index.FindByTime(-1), -1);
  EXPECT_EQ(index.FindByTime(0), 0);
  const Duration frame = index.at(0).duration;
  EXPECT_EQ(index.FindByTime(frame - 1), 0);
  EXPECT_EQ(index.FindByTime(frame), 1);
  EXPECT_EQ(index.FindByTime(frame * 10 + frame / 2), 10);
  EXPECT_EQ(index.FindByTime(Seconds(100)), 29);  // clamped to last
}

TEST(ChunkIndex, RangeByTimeCoversHalfOpenWindow) {
  const ChunkIndex index = BuildCbrIndex(kMpeg1BytesPerSec, 30.0, Seconds(2));
  const Duration frame = index.at(0).duration;
  // Exactly frames [30, 60): the second second of video.
  auto [first, last] = index.RangeByTime(Seconds(1), Seconds(2));
  EXPECT_EQ(first, 30);
  EXPECT_EQ(last, 60);
  // A window inside one frame returns just that frame.
  auto [f2, l2] = index.RangeByTime(frame + 1, frame + 2);
  EXPECT_EQ(f2, 1);
  EXPECT_EQ(l2, 2);
  // Empty window.
  auto [f3, l3] = index.RangeByTime(Seconds(1), Seconds(1));
  EXPECT_EQ(f3, l3);
}

TEST(MediaFile, WriteCreatesFileOfIndexSize) {
  crufs::Ufs fs;
  auto file = WriteMpeg1File(fs, "movie.mpg", Seconds(30));
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(fs.inode(file->inode).size_bytes, file->index.total_bytes());
  EXPECT_NEAR(static_cast<double>(file->index.total_bytes()), 187500.0 * 30, 187500.0);
  EXPECT_DOUBLE_EQ(fs.ContiguityOf(file->inode), 1.0);
}

TEST(MediaFile, DuplicateNameFails) {
  crufs::Ufs fs;
  ASSERT_TRUE(WriteMpeg1File(fs, "movie.mpg", Seconds(1)).ok());
  EXPECT_FALSE(WriteMpeg1File(fs, "movie.mpg", Seconds(1)).ok());
}

TEST(MediaFile, Mpeg2IsFourTimesMpeg1) {
  crufs::Ufs fs;
  auto m1 = WriteMpeg1File(fs, "m1", Seconds(10));
  auto m2 = WriteMpeg2File(fs, "m2", Seconds(10));
  ASSERT_TRUE(m1.ok() && m2.ok());
  EXPECT_NEAR(static_cast<double>(m2->index.total_bytes()) /
                  static_cast<double>(m1->index.total_bytes()),
              4.0, 0.01);
}

struct LoadRig {
  crrt::Kernel kernel;
  crdisk::DiskDevice device;
  crdisk::DiskDriver driver;
  crufs::Ufs fs;
  crufs::UnixServer server;

  LoadRig()
      : device(kernel.engine(),
               [] {
                 crdisk::DiskDevice::Options o;
                 o.geometry = crdisk::St32550nGeometry();
                 return o;
               }()),
        driver(kernel.engine(), device),
        server(kernel, driver, fs) {
    server.Start();
  }
};

TEST(Load, CatReadsSequentiallyForever) {
  LoadRig rig;
  auto file = WriteMpeg1File(rig.fs, "big", Seconds(60));
  ASSERT_TRUE(file.ok());
  crsim::Task cat = SpawnCat(rig.kernel, rig.server, file->inode, "cat1");
  rig.kernel.engine().RunFor(Seconds(5));
  EXPECT_FALSE(cat.done());
  EXPECT_GT(rig.server.stats().requests, 100);
  EXPECT_GT(rig.server.stats().disk_reads, 10);
}

TEST(Load, CatWrapsAtEof) {
  LoadRig rig;
  auto file = WriteMpeg1File(rig.fs, "small", Seconds(1));  // ~187 KB
  ASSERT_TRUE(file.ok());
  crsim::Task cat = SpawnCat(rig.kernel, rig.server, file->inode, "cat1");
  rig.kernel.engine().RunFor(Seconds(5));
  // Reads far exceed one pass over the file.
  EXPECT_GT(rig.server.stats().blocks_requested * rig.fs.block_size(),
            3 * rig.fs.inode(file->inode).size_bytes);
}

TEST(Load, CpuHogSaturatesTheCpu) {
  LoadRig rig;
  crsim::Task hog = SpawnCpuHog(rig.kernel, "hog");
  rig.kernel.engine().RunFor(Seconds(2));
  EXPECT_EQ(rig.kernel.cpu().busy_time(), Seconds(2));
}

TEST(Load, HigherPriorityWorkStillRunsUnderFixedPriority) {
  LoadRig rig;
  crsim::Task hog = SpawnCpuHog(rig.kernel, "hog");
  crbase::Time finished = 0;
  crsim::Task rt = rig.kernel.Spawn("rt", crrt::kPriorityServer,
                                    [&](crrt::ThreadContext& ctx) -> crsim::Task {
                                      co_await ctx.Sleep(Milliseconds(100));
                                      co_await ctx.Compute(Milliseconds(10));
                                      finished = ctx.Now();
                                    });
  rig.kernel.engine().RunFor(Seconds(1));
  // Preempts the hog: finishes right at 110 ms despite full CPU load.
  EXPECT_EQ(finished, Milliseconds(110));
}

}  // namespace
}  // namespace crmedia
