// Lossy-network survival: link impairments, scripted link faults, the NPS
// reliability layer (explicit reassembly, NAK repair, deadline give-up),
// and session leases end to end.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/base/bytes.h"
#include "src/core/player.h"
#include "src/core/testbed.h"
#include "src/fault/fault.h"
#include "src/media/media_file.h"
#include "src/net/link.h"
#include "src/net/nps.h"
#include "src/net/stats_query.h"

namespace crnet {
namespace {

using crbase::Milliseconds;
using crbase::Seconds;

Link::Options FastLink() {
  Link::Options options;
  options.bandwidth_bytes_per_sec = 10e6 / 8.0;
  options.propagation_delay = Milliseconds(1);
  options.per_packet_overhead = 0;
  return options;
}

// ---------------------------------------------------------------------------
// Link impairments.

TEST(LinkImpairments, WireLossSplitFromQueueDrops) {
  crsim::Engine engine;
  Link::Options options = FastLink();
  options.impairments.loss_probability = 1.0;
  Link link(engine, options);
  int delivered = 0;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(link.Send(1250, [&] { ++delivered; }));
  }
  engine.Run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(link.stats().wire_drops, 5);
  EXPECT_EQ(link.stats().tx_queue_drops, 0);
  EXPECT_EQ(link.stats().packets_dropped, 5);
  // A wire-lost packet still burned its serialization time.
  EXPECT_EQ(link.stats().busy_time, 5 * Milliseconds(1));
}

TEST(LinkImpairments, QueueDropsSplitFromWireLoss) {
  crsim::Engine engine;
  Link::Options options = FastLink();
  options.queue_limit = 2;
  Link link(engine, options);
  for (int i = 0; i < 6; ++i) {
    link.Send(1250, nullptr);
  }
  engine.Run();
  EXPECT_EQ(link.stats().tx_queue_drops, 3);
  EXPECT_EQ(link.stats().wire_drops, 0);
  EXPECT_EQ(link.stats().packets_dropped,
            link.stats().tx_queue_drops + link.stats().wire_drops);
}

TEST(LinkImpairments, IidLossRateMatchesProbability) {
  crsim::Engine engine;
  Link link(engine, FastLink());
  link.SetLoss(0.1);
  const int n = 10000;
  int delivered = 0;
  for (int i = 0; i < n; ++i) {
    link.Send(125, [&] { ++delivered; });
  }
  engine.Run();
  const double loss = 1.0 - static_cast<double>(delivered) / n;
  EXPECT_GT(loss, 0.08);
  EXPECT_LT(loss, 0.12);
  EXPECT_EQ(link.stats().wire_drops, n - delivered);
}

TEST(LinkImpairments, GilbertElliottLossIsBursty) {
  crsim::Engine engine;
  Link link(engine, FastLink());
  // Stationary bad-state share 0.05/(0.05+0.5) = 9.1%; mean sojourn in bad
  // (= mean loss-burst length, since loss_bad = 1) is 1/0.5 = 2 packets.
  link.SetBurstLoss(/*p_enter_bad=*/0.05, /*p_exit_bad=*/0.5, /*loss_bad=*/1.0);
  const int n = 10000;
  std::vector<bool> delivered(n, false);
  for (int i = 0; i < n; ++i) {
    link.Send(125, [&delivered, i] { delivered[static_cast<std::size_t>(i)] = true; });
  }
  engine.Run();

  int lost = 0;
  int bursts = 0;
  bool in_burst = false;
  for (bool ok : delivered) {
    if (!ok) {
      ++lost;
      if (!in_burst) {
        ++bursts;
        in_burst = true;
      }
    } else {
      in_burst = false;
    }
  }
  const double loss_rate = static_cast<double>(lost) / n;
  EXPECT_GT(loss_rate, 0.05);
  EXPECT_LT(loss_rate, 0.14);
  // Burstiness: mean run length well above the ~1.1 an i.i.d. process at
  // this rate would produce.
  ASSERT_GT(bursts, 0);
  const double mean_burst = static_cast<double>(lost) / bursts;
  EXPECT_GT(mean_burst, 1.4);
  EXPECT_LT(mean_burst, 3.0);
}

TEST(LinkImpairments, JitterReordersIndependentPropagation) {
  crsim::Engine engine;
  Link::Options options = FastLink();
  options.impairments.jitter = Milliseconds(5);
  Link link(engine, options);
  // 125-byte packets serialize in 0.1 ms — far below the 5 ms jitter, so
  // deliveries must overtake each other.
  const int n = 200;
  std::vector<int> order;
  for (int i = 0; i < n; ++i) {
    link.Send(125, [&order, i] { order.push_back(i); });
  }
  const crbase::Time start = engine.Now();
  engine.Run();
  ASSERT_EQ(static_cast<int>(order.size()), n);  // jitter never loses packets
  int inversions = 0;
  for (int i = 1; i < n; ++i) {
    if (order[static_cast<std::size_t>(i)] < order[static_cast<std::size_t>(i - 1)]) {
      ++inversions;
    }
  }
  EXPECT_GT(inversions, 0);
  // Last possible arrival: all serialization + propagation + max jitter.
  EXPECT_LE(engine.Now() - start,
            n * crbase::Microseconds(100) + Milliseconds(1) + Milliseconds(5));
}

TEST(LinkImpairments, BandwidthDeratingStretchesWireTime) {
  crsim::Engine engine;
  Link link(engine, FastLink());
  link.SetBandwidthDerating(2.0);
  crbase::Time delivered_at = -1;
  // 1250 bytes at 1.25 MB/s would take 1 ms; derated by 2 it takes 2 ms.
  link.Send(1250, [&] { delivered_at = engine.Now(); });
  engine.Run();
  EXPECT_EQ(delivered_at, Milliseconds(2) + Milliseconds(1));
}

// ---------------------------------------------------------------------------
// Scripted link faults.

TEST(LinkFaults, PlanDrivesImpairmentsOverTime) {
  crsim::Engine engine;
  Link link(engine, FastLink());
  crfault::FaultPlan plan;
  plan.LinkLoss(Milliseconds(10), 0.25)
      .LinkJitter(Milliseconds(20), Milliseconds(3), 0.1, Milliseconds(8))
      .LinkDerate(Milliseconds(30), 4.0)
      .LinkRecover(Milliseconds(40));
  crfault::FaultInjector injector(engine, link, plan);
  injector.Arm();

  engine.RunUntil(Milliseconds(15));
  EXPECT_EQ(link.impairments().loss_probability, 0.25);
  engine.RunUntil(Milliseconds(25));
  EXPECT_EQ(link.impairments().jitter, Milliseconds(3));
  EXPECT_EQ(link.impairments().reorder_probability, 0.1);
  EXPECT_EQ(link.impairments().reorder_delay, Milliseconds(8));
  engine.RunUntil(Milliseconds(35));
  EXPECT_EQ(link.impairments().bandwidth_derating, 4.0);
  engine.RunUntil(Milliseconds(45));
  EXPECT_TRUE(link.impairments().perfect());
  EXPECT_EQ(injector.events_fired(), 4);
}

TEST(LinkFaults, BurstLossEventSwitchesToGilbertElliott) {
  crsim::Engine engine;
  Link link(engine, FastLink());
  crfault::FaultPlan plan;
  plan.LinkBurstLoss(Milliseconds(5), 0.02, 0.4, 0.9);
  crfault::FaultInjector injector(engine, link, plan);
  injector.Arm();
  engine.RunUntil(Milliseconds(10));
  EXPECT_TRUE(link.impairments().gilbert_elliott);
  EXPECT_EQ(link.impairments().ge_p_enter_bad, 0.02);
  EXPECT_EQ(link.impairments().ge_p_exit_bad, 0.4);
  EXPECT_EQ(link.impairments().ge_loss_bad, 0.9);
}

TEST(LinkFaults, MixedPlanTargetsVolumeAndLink) {
  crsim::Engine engine;
  crvol::VolumeOptions volume_options;
  volume_options.disks = 2;
  crvol::StripedVolume volume(engine, volume_options);
  Link link(engine, FastLink());
  crfault::FaultPlan plan;
  plan.FailStop(Milliseconds(10), 1).LinkLoss(Milliseconds(20), 0.5);
  crfault::FaultInjector injector(engine, &volume, &link, plan);
  injector.Arm();
  engine.RunUntil(Milliseconds(30));
  EXPECT_EQ(volume.member_state(1), crvol::MemberState::kFailed);
  EXPECT_EQ(link.impairments().loss_probability, 0.5);
}

TEST(LinkFaults, DestroyedInjectorFiresNoEvents) {
  // Inject, destroy early, run the engine: nothing may fire.
  crsim::Engine engine;
  Link link(engine, FastLink());
  {
    crfault::FaultPlan plan;
    plan.LinkLoss(Milliseconds(50), 1.0).LinkDerate(Milliseconds(60), 8.0);
    crfault::FaultInjector injector(engine, link, plan);
    injector.Arm();
  }
  engine.RunUntil(Milliseconds(100));
  EXPECT_TRUE(link.impairments().perfect());
  // And the link still works.
  int delivered = 0;
  link.Send(1250, [&] { ++delivered; });
  engine.Run();
  EXPECT_EQ(delivered, 1);
}

// ---------------------------------------------------------------------------
// NPS reassembly (direct OnFragment injection — no link in the loop).

struct RxRig {
  crrt::Kernel kernel{crrt::Kernel::Options{}};
  NpsReceiver receiver{kernel};

  NpsFragment Frag(std::uint64_t seq, int index, int count) {
    NpsFragment fragment;
    fragment.seq = seq;
    fragment.frag_index = index;
    fragment.frag_count = count;
    fragment.bytes = 8 * crbase::kKiB;
    fragment.chunk.chunk_index = static_cast<std::int64_t>(seq);
    fragment.chunk.timestamp = Milliseconds(100) * static_cast<std::int64_t>(seq);
    fragment.chunk.duration = Milliseconds(100);
    fragment.chunk.size = static_cast<std::int64_t>(count) * 8 * crbase::kKiB;
    return fragment;
  }
};

TEST(NpsReassembly, ReorderedFragmentsAssembleExactlyOnce) {
  RxRig rig;
  // The "final" fragment arrives first: a receiver trusting a
  // final-fragment signal would deliver a chunk with holes.
  rig.receiver.OnFragment(rig.Frag(0, 2, 3));
  EXPECT_EQ(rig.receiver.stats().chunks_received, 0);
  EXPECT_EQ(rig.receiver.incomplete_chunks(), 1u);
  rig.receiver.OnFragment(rig.Frag(0, 0, 3));
  EXPECT_EQ(rig.receiver.stats().chunks_received, 0);
  rig.receiver.OnFragment(rig.Frag(0, 1, 3));
  EXPECT_EQ(rig.receiver.stats().chunks_received, 1);
  EXPECT_EQ(rig.receiver.incomplete_chunks(), 0u);
  EXPECT_EQ(rig.receiver.stats().out_of_order_fragments, 2);
  EXPECT_TRUE(rig.receiver.Get(0).has_value());
}

TEST(NpsReassembly, DuplicateFragmentsAreIgnored) {
  RxRig rig;
  rig.receiver.OnFragment(rig.Frag(0, 0, 2));
  rig.receiver.OnFragment(rig.Frag(0, 0, 2));
  EXPECT_EQ(rig.receiver.stats().duplicate_fragments, 1);
  EXPECT_EQ(rig.receiver.stats().chunks_received, 0);
  rig.receiver.OnFragment(rig.Frag(0, 1, 2));
  EXPECT_EQ(rig.receiver.stats().chunks_received, 1);
  // A late duplicate of a finished chunk is also just counted.
  rig.receiver.OnFragment(rig.Frag(0, 1, 2));
  EXPECT_EQ(rig.receiver.stats().duplicate_fragments, 2);
  EXPECT_EQ(rig.receiver.stats().chunks_received, 1);
  EXPECT_EQ(rig.receiver.stats().bytes_received, 2 * 8 * crbase::kKiB);
}

TEST(NpsReassembly, SequenceGapOpensPlaceholderForLostChunk) {
  RxRig rig;
  rig.receiver.OnFragment(rig.Frag(0, 0, 1));
  // Chunk 1 was wholly lost: its existence is only visible as a gap.
  rig.receiver.OnFragment(rig.Frag(2, 0, 1));
  EXPECT_EQ(rig.receiver.stats().chunks_received, 2);
  EXPECT_EQ(rig.receiver.incomplete_chunks(), 1u);  // the placeholder
}

TEST(NpsReassembly, BestEffortAbandonsIncompleteChunkAfterGrace) {
  // Without a reverse link there is no repair: an incomplete chunk is
  // abandoned once the reordering grace expires.
  RxRig rig;
  rig.receiver.OnFragment(rig.Frag(0, 0, 2));
  rig.kernel.engine().RunFor(NpsReceiver::Options{}.nak_delay * 2);
  EXPECT_EQ(rig.receiver.stats().chunks_received, 0);
  EXPECT_EQ(rig.receiver.stats().chunks_abandoned, 1);
  EXPECT_EQ(rig.receiver.incomplete_chunks(), 0u);
  EXPECT_EQ(rig.receiver.stats().naks_sent, 0);
}

// ---------------------------------------------------------------------------
// End to end over an impaired link: CRAS -> NPS -> lossy wire -> repair.

struct LossyQtPlayRig {
  cras::Testbed server_host;
  crrt::Kernel client_host;
  Link forward;
  Link reverse;
  NpsReceiver receiver;
  NpsSender sender;

  explicit LossyQtPlayRig(const LinkImpairments& impairments, bool reliability)
      : client_host(server_host.engine(), crrt::Kernel::Options{}),
        forward(server_host.engine(), ImpairedOptions(impairments)),
        reverse(server_host.engine()),
        receiver(client_host),
        sender(server_host.kernel, server_host.cras_server, forward, receiver) {
    if (reliability) {
      receiver.ConnectReverse(reverse, sender);
    }
    server_host.StartServers();
  }

  static Link::Options ImpairedOptions(const LinkImpairments& impairments) {
    Link::Options options;  // the default 10 Mb/s Ethernet
    options.impairments = impairments;
    return options;
  }
};

struct PlayResult {
  std::int64_t frames_ok = 0;
  std::int64_t frames_missing = 0;
};

// Opens+starts a session, streams `movie` through the rig, and consumes
// every frame by logical time on the client host.
PlayResult StreamMovie(LossyQtPlayRig& rig, const crmedia::MediaFile& movie,
                       crbase::Duration run_for) {
  cras::SessionId session = cras::kInvalidSession;
  crsim::Task opener = rig.server_host.kernel.Spawn(
      "qtserver", crrt::kPriorityClient, [&](crrt::ThreadContext&) -> crsim::Task {
        cras::OpenParams params;
        params.inode = movie.inode;
        params.index = movie.index;
        auto opened = co_await rig.server_host.cras_server.Open(std::move(params));
        CRAS_CHECK(opened.ok());
        session = *opened;
        (void)co_await rig.server_host.cras_server.StartStream(
            session, rig.server_host.cras_server.SuggestedInitialDelay());
      });
  rig.server_host.engine().RunFor(Milliseconds(50));
  CRAS_CHECK(session != cras::kInvalidSession);
  crsim::Task sender_task = rig.sender.Start(session, &movie.index);

  PlayResult result;
  crsim::Task player = rig.client_host.Spawn(
      "qtclient", crrt::kPriorityClient, [&](crrt::ThreadContext& ctx) -> crsim::Task {
        const crbase::Duration delay =
            rig.server_host.cras_server.SuggestedInitialDelay() + Milliseconds(200);
        rig.receiver.clock().Start(delay);
        co_await ctx.Sleep(delay);
        for (const crmedia::Chunk& chunk : movie.index.chunks()) {
          while (rig.receiver.clock().Now() < chunk.timestamp) {
            co_await ctx.Sleep(Milliseconds(2));
          }
          if (rig.receiver.Get(chunk.timestamp).has_value()) {
            ++result.frames_ok;
          } else {
            ++result.frames_missing;
          }
        }
      });
  rig.server_host.engine().RunFor(run_for);
  return result;
}

TEST(NpsReliability, RetransmitRepairsIidLoss) {
  LinkImpairments impairments;
  impairments.loss_probability = 0.02;
  LossyQtPlayRig rig(impairments, /*reliability=*/true);
  auto movie = crmedia::WriteMpeg1File(rig.server_host.fs, "movie", Seconds(6));
  ASSERT_TRUE(movie.ok());
  const PlayResult result = StreamMovie(rig, *movie, Seconds(12));

  EXPECT_EQ(result.frames_missing, 0);
  EXPECT_EQ(result.frames_ok, static_cast<std::int64_t>(movie->index.count()));
  // The repair machinery actually ran: losses were detected and NAKed.
  EXPECT_GT(rig.forward.stats().wire_drops, 0);
  EXPECT_GT(rig.receiver.stats().naks_sent, 0);
  EXPECT_GT(rig.sender.stats().fragments_retransmitted, 0);
  EXPECT_EQ(rig.sender.stats().naks_received, rig.receiver.stats().naks_sent);
}

TEST(NpsReliability, WithoutRepairLossLosesFrames) {
  LinkImpairments impairments;
  impairments.loss_probability = 0.02;
  LossyQtPlayRig rig(impairments, /*reliability=*/false);
  auto movie = crmedia::WriteMpeg1File(rig.server_host.fs, "movie", Seconds(6));
  ASSERT_TRUE(movie.ok());
  const PlayResult result = StreamMovie(rig, *movie, Seconds(12));

  EXPECT_GT(result.frames_missing, 0);
  EXPECT_EQ(rig.receiver.stats().naks_sent, 0);
  EXPECT_EQ(rig.sender.stats().fragments_retransmitted, 0);
}

TEST(NpsReliability, BlackoutTriggersDeadlineGiveUpThenRecovery) {
  // A total loss window mid-stream: repair cannot succeed (retransmits are
  // lost too), so both ends must give up on the dead chunks — and resume
  // cleanly when the wire heals.
  LossyQtPlayRig rig(LinkImpairments{}, /*reliability=*/true);
  crfault::FaultPlan plan;
  plan.LinkLoss(Seconds(3), 1.0).LinkRecover(Seconds(4));
  crfault::FaultInjector injector(rig.server_host.engine(), rig.forward, plan);
  injector.Arm();

  auto movie = crmedia::WriteMpeg1File(rig.server_host.fs, "movie", Seconds(6));
  ASSERT_TRUE(movie.ok());
  const PlayResult result = StreamMovie(rig, *movie, Seconds(12));

  // Frames inside the blackout are gone; everything else plays. ~30 frames
  // fall in the one-second window (logical lag shifts its edges slightly).
  EXPECT_GT(result.frames_missing, 10);
  EXPECT_LT(result.frames_missing, 60);
  EXPECT_EQ(result.frames_ok + result.frames_missing,
            static_cast<std::int64_t>(movie->index.count()));
  // Both give-up paths fired: the receiver walked away from unrepairable
  // chunks, and late NAKs were refused at the sender.
  EXPECT_GT(rig.receiver.stats().chunks_abandoned, 0);
  EXPECT_GT(rig.receiver.stats().naks_sent, 0);
  // After recovery the stream runs clean again: the last frames all played.
  EXPECT_GT(result.frames_ok, 0);
}

// ---------------------------------------------------------------------------
// Session leases.

struct LeaseRig {
  cras::TestbedOptions options;
  std::unique_ptr<cras::Testbed> bed;
  Link loop;  // heartbeat path (client -> server)
  cras::SessionId session = cras::kInvalidSession;

  LeaseRig() : LeaseRig(Milliseconds(200)) {}

  explicit LeaseRig(crbase::Duration lease_period)
      : options(WithLease(lease_period)),
        bed(std::make_unique<cras::Testbed>(options)),
        loop(bed->engine()) {
    bed->StartServers();
  }

  static cras::TestbedOptions WithLease(crbase::Duration period) {
    cras::TestbedOptions options;
    options.cras.lease_period = period;
    return options;
  }

  void OpenAndStart(const crmedia::MediaFile& movie) {
    crsim::Task opener = bed->kernel.Spawn(
        "client", crrt::kPriorityClient, [&](crrt::ThreadContext&) -> crsim::Task {
          cras::OpenParams params;
          params.inode = movie.inode;
          params.index = movie.index;
          auto opened = co_await bed->cras_server.Open(std::move(params));
          CRAS_CHECK(opened.ok());
          session = *opened;
          (void)co_await bed->cras_server.StartStream(
              session, bed->cras_server.SuggestedInitialDelay());
        });
    bed->engine().RunFor(Milliseconds(50));
    CRAS_CHECK(session != cras::kInvalidSession);
  }
};

TEST(Lease, HeartbeatsKeepSessionAlive) {
  LeaseRig rig;
  auto movie = crmedia::WriteMpeg1File(rig.bed->fs, "movie", Seconds(8));
  ASSERT_TRUE(movie.ok());
  rig.OpenAndStart(*movie);

  LeaseClient::Options hb;
  hb.period = Milliseconds(80);  // renew ~2.5x per lease period
  LeaseClient lease(rig.bed->kernel, rig.bed->cras_server, rig.loop, rig.session, hb);
  crsim::Task heartbeat = lease.Start();
  rig.bed->engine().RunFor(Seconds(2));

  EXPECT_EQ(rig.bed->cras_server.open_sessions(), 1u);
  EXPECT_GT(rig.bed->cras_server.stats().lease_renewals, 0);
  EXPECT_EQ(rig.bed->cras_server.stats().sessions_reaped, 0);
  EXPECT_FALSE(rig.bed->cras_server.WasReaped(rig.session));
  EXPECT_GT(lease.heartbeats_sent(), 20);
}

TEST(Lease, SilentClientReapedWithinTwoPeriods) {
  LeaseRig rig;  // 200 ms lease period
  auto movie = crmedia::WriteMpeg1File(rig.bed->fs, "movie", Seconds(8));
  ASSERT_TRUE(movie.ok());
  rig.OpenAndStart(*movie);
  const std::int64_t reserved = rig.bed->cras_server.buffer_bytes_reserved();
  ASSERT_GT(reserved, 0);

  LeaseClient::Options hb;
  hb.period = Milliseconds(80);
  LeaseClient lease(rig.bed->kernel, rig.bed->cras_server, rig.loop, rig.session, hb);
  crsim::Task heartbeat = lease.Start();
  rig.bed->engine().RunFor(Seconds(1));
  ASSERT_EQ(rig.bed->cras_server.open_sessions(), 1u);

  // The client dies: heartbeats stop. Within two lease periods the server
  // must have reaped the session and returned its buffer reservation.
  lease.Stop();
  rig.bed->engine().RunFor(2 * rig.options.cras.lease_period + hb.period);

  EXPECT_EQ(rig.bed->cras_server.open_sessions(), 0u);
  EXPECT_TRUE(rig.bed->cras_server.WasReaped(rig.session));
  EXPECT_EQ(rig.bed->cras_server.stats().sessions_reaped, 1);
  EXPECT_EQ(rig.bed->cras_server.buffer_bytes_reserved(), 0);
  EXPECT_EQ(rig.bed->cras_server.resumable_sessions(), 1u);
}

TEST(Lease, ReconnectResumesReapedSessionAtItsPosition) {
  LeaseRig rig;
  auto movie = crmedia::WriteMpeg1File(rig.bed->fs, "movie", Seconds(8));
  ASSERT_TRUE(movie.ok());
  rig.OpenAndStart(*movie);
  // Play (with heartbeats) for a while, then go silent and get reaped.
  LeaseClient::Options hb;
  hb.period = Milliseconds(80);
  LeaseClient lease(rig.bed->kernel, rig.bed->cras_server, rig.loop, rig.session, hb);
  crsim::Task heartbeat = lease.Start();
  rig.bed->engine().RunFor(Seconds(2));
  const crbase::Time position = rig.bed->cras_server.LogicalNow(rig.session);
  EXPECT_GT(position, 0);
  lease.Stop();
  rig.bed->engine().RunFor(Seconds(1));
  ASSERT_EQ(rig.bed->cras_server.open_sessions(), 0u);
  ASSERT_TRUE(rig.bed->cras_server.WasReaped(rig.session));

  // Reconnect-and-resume by the original session id.
  bool reconnected = false;
  crsim::Task reconnecter = rig.bed->kernel.Spawn(
      "client-reconnect", crrt::kPriorityClient, [&](crrt::ThreadContext&) -> crsim::Task {
        crbase::Status st = co_await rig.bed->cras_server.Reconnect(rig.session);
        CRAS_CHECK(st.ok()) << st.ToString();
        reconnected = true;
      });
  rig.bed->engine().RunFor(Milliseconds(50));
  ASSERT_TRUE(reconnected);
  EXPECT_EQ(rig.bed->cras_server.open_sessions(), 1u);
  EXPECT_EQ(rig.bed->cras_server.stats().sessions_resumed, 1);
  EXPECT_EQ(rig.bed->cras_server.resumable_sessions(), 0u);
  EXPECT_GT(rig.bed->cras_server.buffer_bytes_reserved(), 0);
  // Keep the resumed lease alive for the rest of the test.
  LeaseClient lease2(rig.bed->kernel, rig.bed->cras_server, rig.loop, rig.session, hb);
  crsim::Task heartbeat2 = lease2.Start();

  // The clock resumes from roughly where the reaper froze it (backed off by
  // the restart pipeline-fill delay), not from zero.
  rig.bed->engine().RunFor(rig.bed->cras_server.SuggestedInitialDelay() + Milliseconds(100));
  const crbase::Time resumed = rig.bed->cras_server.LogicalNow(rig.session);
  EXPECT_GT(resumed, position);
  // And data flows again.
  rig.bed->engine().RunFor(Seconds(1));
  auto stats = rig.bed->cras_server.GetSessionStats(rig.session);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->chunks_published, 0);
}

TEST(Lease, ReconnectOnLiveSessionJustRenews) {
  LeaseRig rig;
  auto movie = crmedia::WriteMpeg1File(rig.bed->fs, "movie", Seconds(8));
  ASSERT_TRUE(movie.ok());
  rig.OpenAndStart(*movie);
  bool ok = false;
  crsim::Task reconnecter = rig.bed->kernel.Spawn(
      "client-reconnect", crrt::kPriorityClient, [&](crrt::ThreadContext&) -> crsim::Task {
        ok = (co_await rig.bed->cras_server.Reconnect(rig.session)).ok();
      });
  rig.bed->engine().RunFor(Milliseconds(50));
  EXPECT_TRUE(ok);
  EXPECT_EQ(rig.bed->cras_server.open_sessions(), 1u);
  EXPECT_EQ(rig.bed->cras_server.stats().sessions_resumed, 0);
}

TEST(Lease, ReconnectUnknownSessionIsNotFound) {
  LeaseRig rig;
  bool not_found = false;
  crsim::Task reconnecter = rig.bed->kernel.Spawn(
      "client-reconnect", crrt::kPriorityClient, [&](crrt::ThreadContext&) -> crsim::Task {
        crbase::Status st = co_await rig.bed->cras_server.Reconnect(999);
        not_found = !st.ok();
      });
  rig.bed->engine().RunFor(Milliseconds(50));
  EXPECT_TRUE(not_found);
}

// ---------------------------------------------------------------------------
// Remote post-mortem: DumpQuery pulls the flight recorder over the wire.

TEST(FlightDump, RemoteDumpQueryCapturesFailureAutopsy) {
  // A member of a 2-disk striped (no parity) volume fail-stops mid-playback:
  // nothing is admissible on the survivor, so the server sheds every stream.
  // The operator on the client host then pulls a flight-recorder dump over
  // the link and must see the whole causal chain — the injected fault, the
  // member-state change, and the shed decisions — plus the budget-ledger
  // tail, without any access to the server host.
  cras::VolumeTestbedOptions options;
  options.volume.disks = 2;
  cras::VolumeTestbed bed(options);
  bed.StartServers();

  constexpr int kStreams = 4;
  std::vector<crmedia::MediaFile> files;
  for (int i = 0; i < kStreams; ++i) {
    auto movie = crmedia::WriteMpeg1File(bed.fs, "movie" + std::to_string(i), Seconds(6));
    ASSERT_TRUE(movie.ok());
    files.push_back(std::move(*movie));
  }
  std::vector<std::unique_ptr<cras::PlayerStats>> player_stats;
  std::vector<crsim::Task> players;
  cras::PlayerOptions player_options;
  player_options.play_length = Seconds(4);
  for (int i = 0; i < kStreams; ++i) {
    player_options.start_delay = Milliseconds(37) * i;
    player_stats.push_back(std::make_unique<cras::PlayerStats>());
    players.push_back(cras::SpawnCrasPlayer(bed.kernel, bed.cras_server,
                                            files[static_cast<std::size_t>(i)],
                                            player_options, player_stats.back().get()));
  }

  Link link(bed.engine());  // the default 10 Mb/s segment
  StatsQueryService stats(bed.kernel, bed.hub, &link);
  stats.Start();

  crfault::FaultPlan plan;
  plan.FailStop(Milliseconds(1500), 0);
  crfault::FaultInjector injector(bed.engine(), bed.volume, plan);
  injector.AttachObs(&bed.hub);
  injector.Arm();

  std::string dump;
  crsim::Task operator_task = bed.kernel.Spawn(
      "operator", crrt::kPriorityClient, [&](crrt::ThreadContext& ctx) -> crsim::Task {
        co_await ctx.Sleep(Seconds(3));  // notice the outage, then pull
        dump = co_await stats.DumpQuery("operator_pull");
      });
  bed.engine().RunFor(Seconds(5));

  // The failure actually bit: every stream was shed.
  ASSERT_EQ(injector.events_fired(), 1);
  EXPECT_EQ(bed.cras_server.stats().streams_shed, kStreams);

  ASSERT_FALSE(dump.empty());
  EXPECT_NE(dump.find("\"reason\": \"operator_pull\""), std::string::npos);
  EXPECT_NE(dump.find("\"fault_injected\""), std::string::npos);
  EXPECT_NE(dump.find("\"member_change\""), std::string::npos);
  EXPECT_NE(dump.find("\"detail\": \"failed\""), std::string::npos);
  EXPECT_NE(dump.find("\"stream_shed\""), std::string::npos);
  EXPECT_NE(dump.find("\"ledger_tail\""), std::string::npos);
  EXPECT_NE(dump.find("\"metrics\""), std::string::npos);
  // The dump rode the link as ordinary traffic.
  EXPECT_EQ(stats.stats().queries, 1);
  EXPECT_EQ(stats.stats().reply_bytes, static_cast<std::int64_t>(dump.size()));
}

TEST(Lease, DisabledByDefaultNothingReaps) {
  cras::Testbed bed;  // lease_period = 0: the classic trusting server
  bed.StartServers();
  auto movie = crmedia::WriteMpeg1File(bed.fs, "movie", Seconds(8));
  ASSERT_TRUE(movie.ok());
  cras::SessionId session = cras::kInvalidSession;
  crsim::Task opener = bed.kernel.Spawn(
      "client", crrt::kPriorityClient, [&](crrt::ThreadContext&) -> crsim::Task {
        cras::OpenParams params;
        params.inode = movie->inode;
        params.index = movie->index;
        auto opened = co_await bed.cras_server.Open(std::move(params));
        CRAS_CHECK(opened.ok());
        session = *opened;
      });
  bed.engine().RunFor(Seconds(5));  // no heartbeats, no reaper
  EXPECT_EQ(bed.cras_server.open_sessions(), 1u);
  EXPECT_EQ(bed.cras_server.stats().sessions_reaped, 0);
  EXPECT_FALSE(bed.cras_server.WasReaped(session));
}

}  // namespace
}  // namespace crnet
