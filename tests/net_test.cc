// Network link and NPS stream-transmission tests.

#include "src/net/link.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "src/base/bytes.h"
#include "src/core/testbed.h"
#include "src/media/media_file.h"
#include "src/net/nps.h"
#include "src/net/stats_query.h"

namespace crnet {
namespace {

using crbase::Milliseconds;
using crbase::Seconds;

Link::Options FastLink() {
  Link::Options options;
  options.bandwidth_bytes_per_sec = 10e6 / 8.0;
  options.propagation_delay = Milliseconds(1);
  options.per_packet_overhead = 0;  // simplifies arithmetic in unit tests
  return options;
}

TEST(Link, SinglePacketLatencyIsWirePlusPropagation) {
  crsim::Engine engine;
  Link link(engine, FastLink());
  crbase::Time delivered_at = -1;
  // 1250 bytes at 1.25 MB/s = 1 ms wire time, +1 ms propagation.
  ASSERT_TRUE(link.Send(1250, [&] { delivered_at = engine.Now(); }));
  engine.Run();
  EXPECT_EQ(delivered_at, Milliseconds(2));
  EXPECT_EQ(link.stats().packets_delivered, 1);
  EXPECT_EQ(link.stats().bytes_delivered, 1250);
}

TEST(Link, PacketsSerializeFifo) {
  crsim::Engine engine;
  Link link(engine, FastLink());
  std::vector<int> order;
  std::vector<crbase::Time> times;
  for (int i = 0; i < 3; ++i) {
    link.Send(1250, [&, i] {
      order.push_back(i);
      times.push_back(engine.Now());
    });
  }
  engine.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  // Serialization back to back: deliveries at 2, 3, 4 ms.
  EXPECT_EQ(times[0], Milliseconds(2));
  EXPECT_EQ(times[1], Milliseconds(3));
  EXPECT_EQ(times[2], Milliseconds(4));
}

TEST(Link, ThroughputMatchesBandwidth) {
  crsim::Engine engine;
  Link link(engine, FastLink());
  std::int64_t delivered = 0;
  for (int i = 0; i < 1000; ++i) {
    link.Send(1250, [&] { delivered += 1250; });
  }
  engine.RunUntil(Seconds(1) + Milliseconds(1));
  // 1.25 MB/s for 1 second.
  EXPECT_NEAR(static_cast<double>(delivered), 1.25e6, 2500.0);
}

TEST(Link, OverheadReducesGoodput) {
  crsim::Engine engine;
  Link::Options options = FastLink();
  options.per_packet_overhead = 1250;  // 50% efficiency for 1250-byte packets
  Link link(engine, options);
  std::int64_t delivered = 0;
  for (int i = 0; i < 1000; ++i) {
    link.Send(1250, [&] { delivered += 1250; });
  }
  engine.RunUntil(Seconds(1) + Milliseconds(1));
  EXPECT_NEAR(static_cast<double>(delivered), 0.625e6, 2500.0);
}

TEST(Link, QueueLimitDrops) {
  crsim::Engine engine;
  Link::Options options = FastLink();
  options.queue_limit = 2;
  Link link(engine, options);
  int delivered = 0;
  // First enters service immediately; next two queue; the rest drop.
  for (int i = 0; i < 6; ++i) {
    link.Send(1250, [&] { ++delivered; });
  }
  engine.Run();
  EXPECT_EQ(delivered, 3);
  EXPECT_EQ(link.stats().packets_dropped, 3);
}

TEST(Link, UtilizationTracksBusyTime) {
  crsim::Engine engine;
  Link link(engine, FastLink());
  link.Send(12500, nullptr);  // 10 ms of wire time
  engine.RunUntil(Milliseconds(100));
  EXPECT_NEAR(link.Utilization(), 0.1, 0.001);
}

// ---------------------------------------------------------------------------
// End-to-end: CRAS -> NPS -> link -> remote buffer, two hosts on one
// timeline.
// ---------------------------------------------------------------------------

struct QtPlayRig {
  cras::Testbed server_host;        // qtserver: CRAS + NPS sender
  crrt::Kernel client_host;         // qtclient: own CPU, shared timeline
  Link ethernet;
  NpsReceiver receiver;
  NpsSender sender;

  QtPlayRig()
      : client_host(server_host.engine(), crrt::Kernel::Options{}),
        ethernet(server_host.engine()),
        receiver(client_host),
        sender(server_host.kernel, server_host.cras_server, ethernet, receiver) {
    server_host.StartServers();
  }
};

TEST(Nps, StreamsAMovieAcrossTheLink) {
  QtPlayRig rig;
  auto movie = crmedia::WriteMpeg1File(rig.server_host.fs, "movie", Seconds(6));
  ASSERT_TRUE(movie.ok());

  cras::SessionId session = cras::kInvalidSession;
  crsim::Task opener = rig.server_host.kernel.Spawn(
      "qtserver", crrt::kPriorityClient, [&](crrt::ThreadContext&) -> crsim::Task {
        cras::OpenParams params;
        params.inode = movie->inode;
        params.index = movie->index;
        auto opened = co_await rig.server_host.cras_server.Open(std::move(params));
        CRAS_CHECK(opened.ok());
        session = *opened;
        (void)co_await rig.server_host.cras_server.StartStream(
            session, rig.server_host.cras_server.SuggestedInitialDelay());
      });
  rig.server_host.engine().RunFor(Milliseconds(50));
  ASSERT_NE(session, cras::kInvalidSession);
  crsim::Task sender_task = rig.sender.Start(session, &movie->index);

  // Remote consumption: start the receiver clock with enough delay for the
  // server pipeline plus network, then fetch every frame by logical time.
  std::int64_t frames_ok = 0;
  std::int64_t frames_missing = 0;
  crsim::Task player = rig.client_host.Spawn(
      "qtclient", crrt::kPriorityClient, [&](crrt::ThreadContext& ctx) -> crsim::Task {
        const crbase::Duration delay =
            rig.server_host.cras_server.SuggestedInitialDelay() + Milliseconds(200);
        rig.receiver.clock().Start(delay);
        co_await ctx.Sleep(delay);
        for (const crmedia::Chunk& chunk : movie->index.chunks()) {
          const crbase::Time due = ctx.Now();
          (void)due;
          while (rig.receiver.clock().Now() < chunk.timestamp) {
            co_await ctx.Sleep(Milliseconds(2));
          }
          if (rig.receiver.Get(chunk.timestamp).has_value()) {
            ++frames_ok;
          } else {
            ++frames_missing;
          }
        }
      });
  rig.server_host.engine().RunFor(Seconds(12));

  EXPECT_EQ(frames_missing, 0);
  EXPECT_EQ(frames_ok, static_cast<std::int64_t>(movie->index.count()));
  EXPECT_EQ(rig.sender.stats().chunks_sent, static_cast<std::int64_t>(movie->index.count()));
  EXPECT_EQ(rig.sender.stats().chunks_skipped, 0);
  EXPECT_EQ(rig.receiver.stats().chunks_received,
            static_cast<std::int64_t>(movie->index.count()));
  // A 1.5 Mb/s stream fits a 10 Mb/s link with plenty of headroom.
  EXPECT_LT(rig.ethernet.Utilization(), 0.35);
  EXPECT_LT(rig.receiver.stats().max_network_latency, Milliseconds(60));
}

TEST(Nps, FragmentsLargeChunks) {
  QtPlayRig rig;
  // 6 Mb/s stream: 25000-byte frames fragment into 4 packets at 8 KiB.
  auto movie = crmedia::WriteMpeg2File(rig.server_host.fs, "hd", Seconds(2));
  ASSERT_TRUE(movie.ok());
  cras::SessionId session = cras::kInvalidSession;
  crsim::Task opener = rig.server_host.kernel.Spawn(
      "qtserver", crrt::kPriorityClient, [&](crrt::ThreadContext&) -> crsim::Task {
        cras::OpenParams params;
        params.inode = movie->inode;
        params.index = movie->index;
        auto opened = co_await rig.server_host.cras_server.Open(std::move(params));
        CRAS_CHECK(opened.ok());
        session = *opened;
        (void)co_await rig.server_host.cras_server.StartStream(
            session, rig.server_host.cras_server.SuggestedInitialDelay());
      });
  rig.server_host.engine().RunFor(Milliseconds(50));
  crsim::Task sender_task = rig.sender.Start(session, &movie->index);
  rig.server_host.engine().RunFor(Seconds(6));
  EXPECT_EQ(rig.sender.stats().chunks_sent, static_cast<std::int64_t>(movie->index.count()));
  EXPECT_EQ(rig.sender.stats().packets_sent, 4 * rig.sender.stats().chunks_sent);
  EXPECT_EQ(rig.receiver.stats().chunks_received, rig.sender.stats().chunks_sent);
}

// ---------------------------------------------------------------------------
// StatsQuery: pulling the server's metrics registry across the link.
// ---------------------------------------------------------------------------

// Pulls the integer "value" of the first series of a counter family out of
// the hub's metrics JSON. Returns -1 if the family is absent.
std::int64_t ExtractCounter(const std::string& json, const std::string& name) {
  std::size_t pos = json.find("\"" + name + "\"");
  if (pos == std::string::npos) {
    return -1;
  }
  pos = json.find("\"value\": ", pos);
  if (pos == std::string::npos) {
    return -1;
  }
  return std::strtoll(json.c_str() + pos + 9, nullptr, 10);
}

TEST(StatsQuery, SnapshotOverLinkMatchesServerStats) {
  QtPlayRig rig;
  StatsQueryService stats(rig.server_host.kernel, rig.server_host.hub, &rig.ethernet);
  stats.Start();
  auto movie = crmedia::WriteMpeg1File(rig.server_host.fs, "movie", Seconds(4));
  ASSERT_TRUE(movie.ok());

  cras::SessionId session = cras::kInvalidSession;
  crsim::Task opener = rig.server_host.kernel.Spawn(
      "qtserver", crrt::kPriorityClient, [&](crrt::ThreadContext&) -> crsim::Task {
        cras::OpenParams params;
        params.inode = movie->inode;
        params.index = movie->index;
        auto opened = co_await rig.server_host.cras_server.Open(std::move(params));
        CRAS_CHECK(opened.ok());
        session = *opened;
        (void)co_await rig.server_host.cras_server.StartStream(
            session, rig.server_host.cras_server.SuggestedInitialDelay());
      });
  rig.server_host.engine().RunFor(Milliseconds(50));
  ASSERT_NE(session, cras::kInvalidSession);
  crsim::Task sender_task = rig.sender.Start(session, &movie->index);
  // Let the whole stream drain so the server's counters are quiescent, then
  // query: the snapshot must agree exactly with the server's own ledger.
  rig.server_host.engine().RunFor(Seconds(8));

  std::string json;
  crbase::Time asked = 0;
  crbase::Time answered = 0;
  crsim::Task query = rig.client_host.Spawn(
      "qtclient-stats", crrt::kPriorityClient, [&](crrt::ThreadContext& ctx) -> crsim::Task {
        asked = ctx.Now();
        json = co_await stats.Query();
        answered = ctx.Now();
      });
  rig.server_host.engine().RunFor(Seconds(1));

  ASSERT_FALSE(json.empty());
  EXPECT_NE(json.find("\"sim_time_ns\""), std::string::npos);
  const cras::ServerStats& server = rig.server_host.cras_server.stats();
  EXPECT_EQ(ExtractCounter(json, "cras.deadline_misses"), server.deadline_misses);
  EXPECT_EQ(ExtractCounter(json, "cras.sessions_opened"), server.sessions_opened);
  EXPECT_EQ(ExtractCounter(json, "cras.bytes_read"), server.bytes_read);
  EXPECT_EQ(ExtractCounter(json, "cras.sessions_opened"), 1);
  EXPECT_GT(ExtractCounter(json, "cras.bytes_read"), 0);
  // The reply is real traffic: at minimum it pays the propagation delay and
  // its own wire time on the 10 Mb/s segment.
  EXPECT_EQ(stats.stats().queries, 1);
  EXPECT_EQ(stats.stats().reply_bytes, static_cast<std::int64_t>(json.size()));
  const Link::Options wire;  // QtPlayRig's ethernet uses default options
  const crbase::Duration min_latency =
      wire.propagation_delay +
      crbase::Time(static_cast<std::int64_t>(1e9 * static_cast<double>(json.size()) /
                                             wire.bandwidth_bytes_per_sec));
  EXPECT_GE(answered - asked, min_latency);
}

TEST(StatsQuery, NullLinkAnswersWithoutNetworkDelay) {
  cras::Testbed bed;
  bed.StartServers();
  StatsQueryService stats(bed.kernel, bed.hub, nullptr);
  stats.Start();

  std::string json;
  crbase::Time asked = 0;
  crbase::Time answered = 0;
  crsim::Task query = bed.kernel.Spawn(
      "local-stats", crrt::kPriorityClient, [&](crrt::ThreadContext& ctx) -> crsim::Task {
        asked = ctx.Now();
        json = co_await stats.Query();
        answered = ctx.Now();
      });
  bed.engine().RunFor(Milliseconds(100));

  ASSERT_FALSE(json.empty());
  EXPECT_EQ(ExtractCounter(json, "cras.sessions_opened"), 0);
  // Same-host path: only the snapshot-rendering CPU charge, no wire time.
  EXPECT_GE(answered - asked, StatsQueryService::Options{}.cpu_per_query);
  EXPECT_LT(answered - asked, Milliseconds(10));
}

// Pulls the integer value of a top-level `"key": N` field out of a reply.
std::int64_t ExtractField(const std::string& json, const std::string& key) {
  const std::size_t pos = json.find("\"" + key + "\": ");
  if (pos == std::string::npos) {
    return -1;
  }
  return std::strtoll(json.c_str() + pos + key.size() + 4, nullptr, 10);
}

TEST(StatsQuery, DeltaQueryShipsWindowedActivity) {
  cras::Testbed bed;
  bed.StartServers();
  StatsQueryService stats(bed.kernel, bed.hub, nullptr);
  stats.Start();
  crobs::Counter* ticks = bed.hub.metrics().GetCounter("test.ticks");
  ticks->Add(5);

  std::string first, second, bogus;
  crsim::Task query = bed.kernel.Spawn(
      "delta-scraper", crrt::kPriorityClient, [&](crrt::ThreadContext& ctx) -> crsim::Task {
        // Cursor 0 = "no baseline": the reply is a full snapshot that also
        // establishes the baseline the next query subtracts against.
        first = co_await stats.DeltaQuery(0);
        ticks->Add(3);
        const std::uint64_t cursor =
            static_cast<std::uint64_t>(ExtractField(first, "cursor"));
        second = co_await stats.DeltaQuery(cursor);
        // An unknown (expired or fabricated) cursor degrades to a full
        // snapshot rather than failing the scrape.
        bogus = co_await stats.DeltaQuery(cursor + 9999);
        (void)ctx;
      });
  bed.engine().RunFor(Milliseconds(100));

  ASSERT_FALSE(first.empty());
  EXPECT_NE(first.find("\"baseline_missing\": true"), std::string::npos);
  EXPECT_EQ(ExtractCounter(first, "test.ticks"), 5);
  EXPECT_GT(ExtractField(first, "cursor"), 0);

  ASSERT_FALSE(second.empty());
  // The windowed delta carries only the activity since the cursor — the
  // 3 new ticks, not the lifetime total of 8.
  EXPECT_NE(second.find("\"baseline_missing\": false"), std::string::npos);
  EXPECT_EQ(ExtractField(second, "since"), ExtractField(first, "cursor"));
  EXPECT_EQ(ExtractCounter(second, "test.ticks"), 3);
  EXPECT_GT(ExtractField(second, "window_ns"), -1);

  ASSERT_FALSE(bogus.empty());
  EXPECT_NE(bogus.find("\"baseline_missing\": true"), std::string::npos);
  EXPECT_EQ(ExtractCounter(bogus, "test.ticks"), 8);
}

}  // namespace
}  // namespace crnet
