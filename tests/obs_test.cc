// Unit tests for the observability subsystem (src/obs): registry semantics,
// label keying, snapshot determinism, trace ring overflow, and Chrome trace
// JSON well-formedness.

#include "src/obs/obs.h"

#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/testbed.h"
#include "src/media/media_file.h"
#include "src/obs/ledger.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/stats/summary.h"

namespace crobs {
namespace {

using crbase::Milliseconds;
using crbase::Seconds;

// ---------------------------------------------------------------------------
// Registry semantics
// ---------------------------------------------------------------------------

TEST(Registry, CounterAccumulates) {
  Registry registry;
  Counter* c = registry.GetCounter("disk.requests");
  c->Add();
  c->Add(41);
  EXPECT_EQ(c->value(), 42);
  const RegistrySnapshot snap = registry.Snapshot();
  const SeriesSnapshot* series = snap.Find("disk.requests");
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->counter, 42);
}

TEST(Registry, GaugeSetAddMax) {
  Registry registry;
  Gauge* g = registry.GetGauge("buffer.resident");
  g->Set(10);
  g->Add(5);
  g->SetMax(12);  // below current 15: no effect
  EXPECT_EQ(g->value(), 15);
  g->SetMax(20);
  EXPECT_EQ(g->value(), 20);
}

TEST(Registry, HistogramBucketsAndSummary) {
  Registry registry;
  Histogram* h = registry.GetHistogram("latency_ms", {}, {1.0, 10.0});
  h->Record(0.5);   // bucket 0 (<= 1)
  h->Record(5.0);   // bucket 1 (<= 10)
  h->Record(50.0);  // overflow bucket
  EXPECT_EQ(h->count(), 3);
  const RegistrySnapshot snap = registry.Snapshot();
  const SeriesSnapshot* series = snap.Find("latency_ms");
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->count, 3);
  ASSERT_EQ(series->buckets.size(), 3u);  // two bounds + overflow
  EXPECT_EQ(series->buckets[0], 1);
  EXPECT_EQ(series->buckets[1], 1);
  EXPECT_EQ(series->buckets[2], 1);
  EXPECT_DOUBLE_EQ(series->min, 0.5);
  EXPECT_DOUBLE_EQ(series->max, 50.0);
}

TEST(Registry, SameNameAndLabelsSharesInstrument) {
  Registry registry;
  Counter* a = registry.GetCounter("io", {{"disk", "d0"}});
  Counter* b = registry.GetCounter("io", {{"disk", "d0"}});
  EXPECT_EQ(a, b);  // find-or-create: one series, one instrument
  a->Add(3);
  EXPECT_EQ(b->value(), 3);
}

TEST(Registry, LabelOrderDoesNotMatter) {
  Registry registry;
  Counter* a = registry.GetCounter("io", {{"queue", "rt"}, {"disk", "d0"}});
  Counter* b = registry.GetCounter("io", {{"disk", "d0"}, {"queue", "rt"}});
  EXPECT_EQ(a, b);
  // Find() normalizes too.
  a->Add();
  const RegistrySnapshot snap = registry.Snapshot();
  const SeriesSnapshot* series = snap.Find("io", {{"queue", "rt"}, {"disk", "d0"}});
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->counter, 1);
}

TEST(Registry, DistinctLabelsAreDistinctSeries) {
  Registry registry;
  Counter* rt = registry.GetCounter("io", {{"queue", "rt"}});
  Counter* nr = registry.GetCounter("io", {{"queue", "nr"}});
  EXPECT_NE(rt, nr);
  rt->Add(2);
  nr->Add(5);
  const RegistrySnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.Find("io", {{"queue", "rt"}})->counter, 2);
  EXPECT_EQ(snap.Find("io", {{"queue", "nr"}})->counter, 5);
  ASSERT_EQ(snap.families.size(), 1u);
  EXPECT_EQ(snap.families[0].series.size(), 2u);
}

TEST(Registry, SnapshotOrderIsLexicographic) {
  Registry registry;
  registry.GetCounter("zeta");
  registry.GetCounter("alpha", {{"disk", "d1"}});
  registry.GetCounter("alpha", {{"disk", "d0"}});
  const RegistrySnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.families.size(), 2u);
  EXPECT_EQ(snap.families[0].name, "alpha");
  EXPECT_EQ(snap.families[1].name, "zeta");
  ASSERT_EQ(snap.families[0].series.size(), 2u);
  EXPECT_EQ(snap.families[0].series[0].labels, (Labels{{"disk", "d0"}}));
  EXPECT_EQ(snap.families[0].series[1].labels, (Labels{{"disk", "d1"}}));
}

TEST(Registry, FindMissingReturnsNull) {
  Registry registry;
  registry.GetCounter("io", {{"disk", "d0"}});
  const RegistrySnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.Find("nope"), nullptr);
  EXPECT_EQ(snap.Find("io", {{"disk", "d9"}}), nullptr);
}

// ---------------------------------------------------------------------------
// Snapshot determinism: two identical simulated runs must serialize to
// byte-identical metrics JSON (virtual time, deterministic event order).
// ---------------------------------------------------------------------------

std::string RunOnceAndSnapshot() {
  cras::TestbedOptions options;
  options.obs.trace.enabled = true;
  cras::Testbed bed(options);
  bed.StartServers();
  auto movie = crmedia::WriteMpeg1File(bed.fs, "movie", Seconds(2));
  CRAS_CHECK(movie.ok());
  crsim::Task client = bed.kernel.Spawn(
      "client", crrt::kPriorityClient, [&](crrt::ThreadContext&) -> crsim::Task {
        cras::OpenParams params;
        params.inode = movie->inode;
        params.index = movie->index;
        auto opened = co_await bed.cras_server.Open(std::move(params));
        CRAS_CHECK(opened.ok());
        (void)co_await bed.cras_server.StartStream(
            *opened, bed.cras_server.SuggestedInitialDelay());
      });
  bed.engine().RunFor(Seconds(4));
  return bed.hub.MetricsJson();
}

TEST(Snapshot, DeterministicAcrossIdenticalRuns) {
  const std::string first = RunOnceAndSnapshot();
  const std::string second = RunOnceAndSnapshot();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  // Sanity: the run actually produced instrumented activity.
  EXPECT_NE(first.find("\"cras.bytes_read\""), std::string::npos);
  EXPECT_NE(first.find("\"disk.requests\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Trace ring overflow policy: bounded memory, newest events win.
// ---------------------------------------------------------------------------

TEST(Trace, RingKeepsNewestEvents) {
  crsim::Engine engine;
  Tracer::Options options;
  options.enabled = true;
  options.capacity = 8;
  Tracer tracer(engine, options);
  const std::uint32_t track = tracer.InternTrack("t");
  const std::uint32_t name = tracer.InternName("tick");
  for (int i = 0; i < 20; ++i) {
    tracer.Instant(track, name, static_cast<double>(i));
  }
  EXPECT_EQ(tracer.size(), 8u);
  EXPECT_EQ(tracer.recorded(), 20u);
  EXPECT_EQ(tracer.dropped(), 12u);
  const std::vector<TraceEvent> events = tracer.Events();
  ASSERT_EQ(events.size(), 8u);
  // Oldest-first ordering, holding the 8 most recent values (12..19).
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(events[i].value, static_cast<double>(12 + i));
  }
}

TEST(Trace, DisabledTracerRecordsNothing) {
  crsim::Engine engine;
  Tracer tracer(engine, Tracer::Options{});
  const std::uint32_t track = tracer.InternTrack("t");
  const std::uint32_t name = tracer.InternName("tick");
  tracer.Instant(track, name);
  tracer.Begin(track, name);
  tracer.End(track, name);
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.recorded(), 0u);
}

// ---------------------------------------------------------------------------
// Chrome trace JSON well-formedness.
// ---------------------------------------------------------------------------

// Minimal recursive-descent JSON validator: accepts exactly well-formed
// JSON values (enough to guarantee chrome://tracing / Perfetto can load the
// export without a parse error).
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) {
      return false;
    }
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) {
      return false;
    }
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }
  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek('}')) {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!String()) {
        return false;
      }
      SkipWs();
      if (!Peek(':')) {
        return false;
      }
      ++pos_;
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek(',')) {
        ++pos_;
        continue;
      }
      if (Peek('}')) {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek(']')) {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek(',')) {
        ++pos_;
        continue;
      }
      if (Peek(']')) {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool String() {
    if (!Peek('"')) {
      return false;
    }
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;  // escape: consume the escaped character blindly
        if (pos_ >= s_.size()) {
          return false;
        }
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) {
      return false;
    }
    ++pos_;  // closing quote
    return true;
  }
  bool Number() {
    const std::size_t start = pos_;
    if (Peek('-')) {
      ++pos_;
    }
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Literal(const char* word) {
    const std::string w(word);
    if (s_.compare(pos_, w.size(), w) != 0) {
      return false;
    }
    pos_ += w.size();
    return true;
  }
  bool Peek(char c) const { return pos_ < s_.size() && s_[pos_] == c; }
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(Trace, ChromeJsonIsWellFormed) {
  crsim::Engine engine;
  Tracer::Options options;
  options.enabled = true;
  Tracer tracer(engine, options);
  const std::uint32_t track = tracer.InternTrack("disk0.queue");
  const std::uint32_t name = tracer.InternName("io \"quoted\"\n");  // escaping
  const std::uint32_t cat = tracer.InternName("queue");
  tracer.Begin(track, name);
  tracer.End(track, name);
  tracer.Complete(track, name, /*start=*/Milliseconds(1), /*dur=*/Milliseconds(2));
  tracer.Instant(track, name, 7.5);
  tracer.CounterSample(track, name, 42);
  tracer.AsyncBegin(track, cat, name, /*id=*/9);
  tracer.AsyncEnd(track, cat, name, /*id=*/9);

  std::ostringstream out;
  tracer.WriteChromeJson(out);
  const std::string json = out.str();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  // All seven phases present, plus thread-name metadata for the track.
  for (const char* ph : {"\"ph\": \"B\"", "\"ph\": \"E\"", "\"ph\": \"X\"", "\"ph\": \"i\"",
                         "\"ph\": \"C\"", "\"ph\": \"b\"", "\"ph\": \"e\"",
                         "\"thread_name\""}) {
    EXPECT_NE(json.find(ph), std::string::npos) << ph;
  }
  EXPECT_NE(json.find("disk0.queue"), std::string::npos);
}

TEST(Trace, MetricsJsonIsWellFormedEndToEnd) {
  const std::string json = RunOnceAndSnapshot();
  EXPECT_TRUE(JsonChecker(json).Valid());
}

TEST(Trace, ChromeJsonCarriesDropStatsMetadata) {
  crsim::Engine engine;
  Tracer::Options options;
  options.enabled = true;
  options.capacity = 4;
  Tracer tracer(engine, options);
  const std::uint32_t track = tracer.InternTrack("t");
  const std::uint32_t name = tracer.InternName("tick");
  for (int i = 0; i < 10; ++i) {
    tracer.Instant(track, name);
  }
  std::ostringstream out;
  tracer.WriteChromeJson(out);
  const std::string json = out.str();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"trace_stats\""), std::string::npos);
  EXPECT_NE(json.find("\"recorded\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"dropped\": 6"), std::string::npos);
  EXPECT_NE(json.find("\"capacity\": 4"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Histogram percentiles: interpolated p from the fixed bins.
// ---------------------------------------------------------------------------

std::vector<double> UnitBounds(int n) {
  std::vector<double> bounds;
  for (int i = 1; i <= n; ++i) {
    bounds.push_back(static_cast<double>(i));
  }
  return bounds;
}

TEST(Percentile, ExactOnBucketBoundaries) {
  Registry registry;
  Histogram* h = registry.GetHistogram("x", {}, UnitBounds(10));
  for (int i = 1; i <= 10; ++i) {
    h->Record(static_cast<double>(i));  // one sample per bucket
  }
  const RegistrySnapshot snap = registry.Snapshot();
  const SeriesSnapshot* s = snap.Find("x");
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s->Percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(s->Percentile(95), 9.5);
  EXPECT_DOUBLE_EQ(s->Percentile(100), 10.0);
  // Out-of-range p clamps to the ends rather than extrapolating.
  EXPECT_DOUBLE_EQ(s->Percentile(-5), s->Percentile(0));
  EXPECT_DOUBLE_EQ(s->Percentile(150), s->Percentile(100));
}

TEST(Percentile, EmptySeriesIsZero) {
  Registry registry;
  registry.GetHistogram("x", {}, UnitBounds(4));
  const RegistrySnapshot snap = registry.Snapshot();
  const SeriesSnapshot* s = snap.Find("x");
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->Percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(s->Percentile(99), 0.0);
}

TEST(Percentile, SingleSampleIsThatSample) {
  Registry registry;
  Histogram* h = registry.GetHistogram("x", {}, UnitBounds(10));
  h->Record(7.0);
  const RegistrySnapshot snap = registry.Snapshot();
  const SeriesSnapshot* s = snap.Find("x");
  ASSERT_NE(s, nullptr);
  // The min/max clamp pins every percentile of a one-sample series.
  for (const double p : {0.0, 50.0, 95.0, 100.0}) {
    EXPECT_DOUBLE_EQ(s->Percentile(p), 7.0) << "p" << p;
  }
}

TEST(Percentile, OverflowBucketInterpolatesTowardMax) {
  Registry registry;
  Histogram* h = registry.GetHistogram("x", {}, {1.0, 2.0});
  h->Record(0.5);
  h->Record(50.0);  // overflow: upper edge is the recorded max
  const RegistrySnapshot snap = registry.Snapshot();
  const SeriesSnapshot* s = snap.Find("x");
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->Percentile(100), 50.0);
  EXPECT_DOUBLE_EQ(s->Percentile(0), 0.5);
}

TEST(Percentile, AgreesWithRetainedSamples) {
  // The binned estimate must track the exact retained-sample percentile to
  // within one bucket width on a shared sample set.
  Registry registry;
  Histogram* h = registry.GetHistogram("x", {}, UnitBounds(100));
  crstats::Samples samples;
  for (int i = 0; i < 100; ++i) {
    const double v = static_cast<double>(i) + 0.5;
    h->Record(v);
    samples.Add(v);
  }
  const RegistrySnapshot snap = registry.Snapshot();
  const SeriesSnapshot* s = snap.Find("x");
  ASSERT_NE(s, nullptr);
  for (const double p : {10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0}) {
    EXPECT_NEAR(s->Percentile(p), samples.Percentile(p), 1.0) << "p" << p;
  }
}

TEST(Percentile, AppearsInMetricsJson) {
  Registry registry;
  registry.GetHistogram("latency_ms", {}, {1.0, 10.0})->Record(5.0);
  const std::string json = registry.Snapshot().ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  for (const char* key : {"\"p50\"", "\"p95\"", "\"p99\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

TEST(Percentile, MoreBucketsThanBoundsStaysInRange) {
  // Regression: a snapshot whose buckets vector is longer than its bounds
  // (the trailing overflow bin plus any stale extras) indexed upper_bounds
  // past the end when computing a bucket's lower edge. Every percentile of
  // a hand-built snapshot must stay inside [min, max].
  SeriesSnapshot s;
  s.count = 3;
  s.buckets = {1, 1, 1};  // one real bound, two bins past it
  s.upper_bounds = {1.0};
  s.min = 0.5;
  s.max = 9.0;
  for (const double p : {0.0, 10.0, 60.0, 95.0, 100.0}) {
    const double v = s.Percentile(p);
    EXPECT_GE(v, s.min) << "p" << p;
    EXPECT_LE(v, s.max) << "p" << p;
  }
}

TEST(Percentile, SingleBinWithoutBoundsInterpolatesMinToMax) {
  // Regression: a single-bin histogram with an empty bounds vector walked
  // off upper_bounds for both edges. The only bin spans [min, max].
  SeriesSnapshot s;
  s.count = 2;
  s.buckets = {2};
  s.upper_bounds = {};
  s.min = 3.0;
  s.max = 5.0;
  EXPECT_DOUBLE_EQ(s.Percentile(0), 3.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 4.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 5.0);
}

TEST(Snapshot, HubSynthesizesTraceDropCounter) {
  const std::string json = RunOnceAndSnapshot();
  // The tracer's drop count rides along as a counter family, and every
  // histogram family carries its interpolated percentiles.
  EXPECT_NE(json.find("\"obs.trace_dropped_events\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(Snapshot, HealthBlockSurfacesRingPressure) {
  // MetricsJson leads with a health block so a scraper can tell whether the
  // observability rings themselves overflowed — a truncated flight ring or
  // a dropping tracer means later analysis runs on partial evidence.
  crsim::Engine engine;
  Hub::Options options;
  options.trace.enabled = true;
  options.trace.capacity = 4;
  options.flight.capacity = 2;
  Hub hub(engine, options);
  const std::uint32_t track = hub.trace().InternTrack("t");
  const std::uint32_t name = hub.trace().InternName("tick");
  for (int i = 0; i < 10; ++i) {
    hub.trace().Instant(track, name);
  }
  for (int i = 0; i < 5; ++i) {
    hub.flight().Record(FlightEventKind::kDeadlineMiss, i);
  }
  const std::string json = hub.MetricsJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"health\": {"), std::string::npos);
  EXPECT_NE(json.find("\"trace_dropped_events\": 6"), std::string::npos) << json;
  EXPECT_NE(json.find("\"flight_ring_overwrites\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"frame_conservation_violations\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"slo_burn_events\": 0"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Flight recorder: bounded ring, dump window, trigger determinism.
// ---------------------------------------------------------------------------

TEST(FlightRecorder, RingKeepsNewestEvents) {
  crsim::Engine engine;
  FlightRecorder::Options options;
  options.capacity = 4;
  FlightRecorder recorder(engine, nullptr, options);
  for (int i = 0; i < 10; ++i) {
    recorder.Record(FlightEventKind::kStreamShed, /*a=*/i);
  }
  EXPECT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.recorded(), 10u);
  EXPECT_EQ(recorder.dropped(), 6u);
  // Oldest-first, holding sessions 6..9.
  int expected = 6;
  for (const FlightEvent& event : recorder.events()) {
    EXPECT_EQ(event.a, expected++);
  }
}

TEST(FlightRecorder, DumpWindowFiltersOldEvents) {
  crsim::Engine engine;
  FlightRecorder::Options options;
  options.window = Seconds(10);
  FlightRecorder recorder(engine, nullptr, options);
  engine.ScheduleAt(Seconds(1), [&] {
    recorder.Record(FlightEventKind::kLeaseReap, 1, 0, 0, "early");
  });
  engine.ScheduleAt(Seconds(15), [&] {
    recorder.Record(FlightEventKind::kLeaseReap, 2, 0, 0, "late");
  });
  engine.RunUntil(Seconds(20));
  const std::string dump = recorder.RenderDump("window_test");
  EXPECT_TRUE(JsonChecker(dump).Valid()) << dump;
  // Both events stay in the ring; only the in-window one is serialized.
  EXPECT_EQ(recorder.size(), 2u);
  EXPECT_NE(dump.find("\"late\""), std::string::npos);
  EXPECT_EQ(dump.find("\"early\""), std::string::npos);
  EXPECT_NE(dump.find("\"events_recorded\": 2"), std::string::npos);
}

TEST(FlightRecorder, AutoTriggerFreezesDumpOnMaskedKind) {
  crsim::Engine engine;
  FlightRecorder::Options options;
  options.triggers = {FlightEventKind::kDeadlineMiss};
  FlightRecorder recorder(engine, nullptr, options);
  recorder.Record(FlightEventKind::kAdmissionAccept);  // unmasked: no dump
  EXPECT_EQ(recorder.triggers_fired(), 0u);
  EXPECT_TRUE(recorder.dumps().empty());
  recorder.Record(FlightEventKind::kDeadlineMiss, /*a=*/7);
  EXPECT_EQ(recorder.triggers_fired(), 1u);
  ASSERT_EQ(recorder.dumps().size(), 1u);
  const std::string& dump = recorder.dumps().front();
  EXPECT_TRUE(JsonChecker(dump).Valid()) << dump;
  EXPECT_NE(dump.find("\"reason\": \"auto:deadline_miss\""), std::string::npos);
  // The triggering event itself is inside its own dump.
  EXPECT_NE(dump.find("\"deadline_miss\""), std::string::npos);
}

TEST(FlightRecorder, RetainedDumpsAreBounded) {
  crsim::Engine engine;
  FlightRecorder::Options options;
  options.max_dumps = 2;
  FlightRecorder recorder(engine, nullptr, options);
  for (int i = 0; i < 5; ++i) {
    recorder.Trigger("r" + std::to_string(i));
  }
  EXPECT_EQ(recorder.triggers_fired(), 5u);
  ASSERT_EQ(recorder.dumps().size(), 2u);  // newest two survive
  EXPECT_NE(recorder.dumps().front().find("\"r3\""), std::string::npos);
  EXPECT_NE(recorder.dumps().back().find("\"r4\""), std::string::npos);
}

std::string RecordAndDumpOnce() {
  crsim::Engine engine;
  FlightRecorder recorder(engine, nullptr, FlightRecorder::Options{});
  engine.ScheduleAt(Seconds(1), [&] {
    recorder.Record(FlightEventKind::kMemberChange, 1, 0, 0, "failed");
    recorder.Record(FlightEventKind::kStreamShed, 9);
  });
  engine.RunUntil(Seconds(2));
  return recorder.RenderDump("repro");
}

TEST(FlightRecorder, DumpIsDeterministicAcrossIdenticalRuns) {
  const std::string first = RecordAndDumpOnce();
  const std::string second = RecordAndDumpOnce();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(FlightRecorder, HubDumpCarriesEventsLedgerAndMetrics) {
  cras::TestbedOptions options;
  cras::Testbed bed(options);
  bed.StartServers();
  auto movie = crmedia::WriteMpeg1File(bed.fs, "movie", Seconds(2));
  CRAS_CHECK(movie.ok());
  crsim::Task client = bed.kernel.Spawn(
      "client", crrt::kPriorityClient, [&](crrt::ThreadContext&) -> crsim::Task {
        cras::OpenParams params;
        params.inode = movie->inode;
        params.index = movie->index;
        auto opened = co_await bed.cras_server.Open(std::move(params));
        CRAS_CHECK(opened.ok());
        (void)co_await bed.cras_server.StartStream(
            *opened, bed.cras_server.SuggestedInitialDelay());
      });
  bed.engine().RunFor(Seconds(4));
  const std::string dump = bed.hub.FlightDumpJson("test");
  EXPECT_TRUE(JsonChecker(dump).Valid()) << dump;
  // The admission verdict was recorded, and the dump stitches all three
  // sections together: event window, budget-ledger tail, metrics snapshot.
  EXPECT_NE(dump.find("\"admission_accept\""), std::string::npos);
  EXPECT_NE(dump.find("\"ledger_tail\""), std::string::npos);
  EXPECT_NE(dump.find("\"metrics\""), std::string::npos);
  EXPECT_NE(dump.find("\"ledger.intervals\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Budget ledger: prediction vs actuals, overrun detection, late attribution.
// ---------------------------------------------------------------------------

BudgetTerms MakeTerms(double command, double seek, double rotation, double transfer,
                      double other = 0) {
  BudgetTerms terms;
  terms.command_ms = command;
  terms.seek_ms = seek;
  terms.rotation_ms = rotation;
  terms.transfer_ms = transfer;
  terms.other_ms = other;
  return terms;
}

TEST(BudgetLedger, OverrunWhenActualTotalExceedsPrediction) {
  Registry registry;
  BudgetLedger ledger(&registry);
  ledger.BeginInterval(0, Milliseconds(0));
  ledger.SetPrediction(0, /*disk=*/0, MakeTerms(1, 4, 3, 2), /*requests=*/2);
  ledger.SetPrediction(0, /*disk=*/1, MakeTerms(1, 4, 3, 2), /*requests=*/2);
  // Disk 0 stays inside its 10 ms budget; disk 1 blows through it.
  ledger.AddActual(0, 0, MakeTerms(0.5, 2, 1.5, 2));
  ledger.AddActual(0, 1, MakeTerms(1, 5, 4, 2));
  ledger.CloseInterval(0);
  EXPECT_EQ(ledger.intervals_closed(), 1);
  EXPECT_EQ(ledger.overruns(), 1);
  EXPECT_EQ(ledger.late_attributions(), 0);
  const RegistrySnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.Find("ledger.intervals")->counter, 1);
  EXPECT_EQ(snap.Find("ledger.overruns")->counter, 1);
}

TEST(BudgetLedger, EmitsPerTermUtilizationHistograms) {
  Registry registry;
  BudgetLedger ledger(&registry);
  ledger.BeginInterval(3, Milliseconds(1500));
  ledger.SetPrediction(3, /*disk=*/0, MakeTerms(2, 10, 4, 8), /*requests=*/1);
  ledger.AddActual(3, 0, MakeTerms(1, 5, 1, 8));
  ledger.CloseInterval(3);
  const RegistrySnapshot snap = registry.Snapshot();
  const Labels seek_labels{{"disk", "disk0"}, {"term", "seek"}};
  const SeriesSnapshot* seek = snap.Find("ledger.util_pct", seek_labels);
  ASSERT_NE(seek, nullptr);
  EXPECT_EQ(seek->count, 1);
  EXPECT_DOUBLE_EQ(seek->mean, 50.0);  // 5 of 10 ms used
  const SeriesSnapshot* transfer =
      snap.Find("ledger.util_pct", {{"disk", "disk0"}, {"term", "transfer"}});
  ASSERT_NE(transfer, nullptr);
  EXPECT_DOUBLE_EQ(transfer->mean, 100.0);
  // A term with no predicted budget (other here) emits nothing.
  EXPECT_EQ(snap.Find("ledger.util_pct", {{"disk", "disk0"}, {"term", "other"}}), nullptr);
}

TEST(BudgetLedger, LateAttributionIsCountedNotApplied) {
  Registry registry;
  BudgetLedger ledger(&registry);
  ledger.BeginInterval(0, Milliseconds(0));
  ledger.SetPrediction(0, 0, MakeTerms(1, 1, 1, 1), 1);
  ledger.CloseInterval(0);
  ledger.AddActual(0, 0, MakeTerms(9, 9, 9, 9));  // after close: refused
  ledger.AddActual(42, 0, MakeTerms(1, 1, 1, 1));  // unknown slot: refused
  EXPECT_EQ(ledger.late_attributions(), 2);
  EXPECT_EQ(ledger.overruns(), 0);  // the refused actuals changed nothing
  EXPECT_EQ(registry.Snapshot().Find("ledger.late_attributions")->counter, 2);
  // Closing again is idempotent.
  ledger.CloseInterval(0);
  EXPECT_EQ(ledger.intervals_closed(), 1);
}

TEST(BudgetLedger, EvictingUnclosedRowCountsAsLate) {
  Registry registry;
  BudgetLedger::Options options;
  options.max_intervals = 2;
  BudgetLedger ledger(&registry, options);
  ledger.BeginInterval(0, Milliseconds(0));
  ledger.BeginInterval(1, Milliseconds(500));
  ledger.BeginInterval(2, Milliseconds(1000));  // evicts slot 0, never closed
  EXPECT_EQ(ledger.rows().size(), 2u);
  EXPECT_EQ(ledger.late_attributions(), 1);
  EXPECT_EQ(ledger.rows().front().slot, 1);
}

TEST(BudgetLedger, JsonTailIsWellFormed) {
  Registry registry;
  BudgetLedger ledger(&registry);
  for (int slot = 0; slot < 4; ++slot) {
    ledger.BeginInterval(slot, Milliseconds(500) * slot);
    ledger.SetPrediction(slot, 0, MakeTerms(1, 4, 3, 2, 0.5), 2);
    ledger.AddActual(slot, 0, MakeTerms(0.5, 2, 1, 2));
    ledger.CloseInterval(slot);
  }
  std::ostringstream out;
  ledger.WriteJsonTail(out, /*max_rows=*/2);
  const std::string json = out.str();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  // Only the newest two rows appear.
  EXPECT_EQ(json.find("\"slot\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"slot\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"slot\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"overrun\": false"), std::string::npos);
}

}  // namespace
}  // namespace crobs
