// Unit tests for the observability subsystem (src/obs): registry semantics,
// label keying, snapshot determinism, trace ring overflow, and Chrome trace
// JSON well-formedness.

#include "src/obs/obs.h"

#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/testbed.h"
#include "src/media/media_file.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace crobs {
namespace {

using crbase::Milliseconds;
using crbase::Seconds;

// ---------------------------------------------------------------------------
// Registry semantics
// ---------------------------------------------------------------------------

TEST(Registry, CounterAccumulates) {
  Registry registry;
  Counter* c = registry.GetCounter("disk.requests");
  c->Add();
  c->Add(41);
  EXPECT_EQ(c->value(), 42);
  const RegistrySnapshot snap = registry.Snapshot();
  const SeriesSnapshot* series = snap.Find("disk.requests");
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->counter, 42);
}

TEST(Registry, GaugeSetAddMax) {
  Registry registry;
  Gauge* g = registry.GetGauge("buffer.resident");
  g->Set(10);
  g->Add(5);
  g->SetMax(12);  // below current 15: no effect
  EXPECT_EQ(g->value(), 15);
  g->SetMax(20);
  EXPECT_EQ(g->value(), 20);
}

TEST(Registry, HistogramBucketsAndSummary) {
  Registry registry;
  Histogram* h = registry.GetHistogram("latency_ms", {}, {1.0, 10.0});
  h->Record(0.5);   // bucket 0 (<= 1)
  h->Record(5.0);   // bucket 1 (<= 10)
  h->Record(50.0);  // overflow bucket
  EXPECT_EQ(h->count(), 3);
  const RegistrySnapshot snap = registry.Snapshot();
  const SeriesSnapshot* series = snap.Find("latency_ms");
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->count, 3);
  ASSERT_EQ(series->buckets.size(), 3u);  // two bounds + overflow
  EXPECT_EQ(series->buckets[0], 1);
  EXPECT_EQ(series->buckets[1], 1);
  EXPECT_EQ(series->buckets[2], 1);
  EXPECT_DOUBLE_EQ(series->min, 0.5);
  EXPECT_DOUBLE_EQ(series->max, 50.0);
}

TEST(Registry, SameNameAndLabelsSharesInstrument) {
  Registry registry;
  Counter* a = registry.GetCounter("io", {{"disk", "d0"}});
  Counter* b = registry.GetCounter("io", {{"disk", "d0"}});
  EXPECT_EQ(a, b);  // find-or-create: one series, one instrument
  a->Add(3);
  EXPECT_EQ(b->value(), 3);
}

TEST(Registry, LabelOrderDoesNotMatter) {
  Registry registry;
  Counter* a = registry.GetCounter("io", {{"queue", "rt"}, {"disk", "d0"}});
  Counter* b = registry.GetCounter("io", {{"disk", "d0"}, {"queue", "rt"}});
  EXPECT_EQ(a, b);
  // Find() normalizes too.
  a->Add();
  const RegistrySnapshot snap = registry.Snapshot();
  const SeriesSnapshot* series = snap.Find("io", {{"queue", "rt"}, {"disk", "d0"}});
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->counter, 1);
}

TEST(Registry, DistinctLabelsAreDistinctSeries) {
  Registry registry;
  Counter* rt = registry.GetCounter("io", {{"queue", "rt"}});
  Counter* nr = registry.GetCounter("io", {{"queue", "nr"}});
  EXPECT_NE(rt, nr);
  rt->Add(2);
  nr->Add(5);
  const RegistrySnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.Find("io", {{"queue", "rt"}})->counter, 2);
  EXPECT_EQ(snap.Find("io", {{"queue", "nr"}})->counter, 5);
  ASSERT_EQ(snap.families.size(), 1u);
  EXPECT_EQ(snap.families[0].series.size(), 2u);
}

TEST(Registry, SnapshotOrderIsLexicographic) {
  Registry registry;
  registry.GetCounter("zeta");
  registry.GetCounter("alpha", {{"disk", "d1"}});
  registry.GetCounter("alpha", {{"disk", "d0"}});
  const RegistrySnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.families.size(), 2u);
  EXPECT_EQ(snap.families[0].name, "alpha");
  EXPECT_EQ(snap.families[1].name, "zeta");
  ASSERT_EQ(snap.families[0].series.size(), 2u);
  EXPECT_EQ(snap.families[0].series[0].labels, (Labels{{"disk", "d0"}}));
  EXPECT_EQ(snap.families[0].series[1].labels, (Labels{{"disk", "d1"}}));
}

TEST(Registry, FindMissingReturnsNull) {
  Registry registry;
  registry.GetCounter("io", {{"disk", "d0"}});
  const RegistrySnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.Find("nope"), nullptr);
  EXPECT_EQ(snap.Find("io", {{"disk", "d9"}}), nullptr);
}

// ---------------------------------------------------------------------------
// Snapshot determinism: two identical simulated runs must serialize to
// byte-identical metrics JSON (virtual time, deterministic event order).
// ---------------------------------------------------------------------------

std::string RunOnceAndSnapshot() {
  cras::TestbedOptions options;
  options.obs.trace.enabled = true;
  cras::Testbed bed(options);
  bed.StartServers();
  auto movie = crmedia::WriteMpeg1File(bed.fs, "movie", Seconds(2));
  CRAS_CHECK(movie.ok());
  crsim::Task client = bed.kernel.Spawn(
      "client", crrt::kPriorityClient, [&](crrt::ThreadContext&) -> crsim::Task {
        cras::OpenParams params;
        params.inode = movie->inode;
        params.index = movie->index;
        auto opened = co_await bed.cras_server.Open(std::move(params));
        CRAS_CHECK(opened.ok());
        (void)co_await bed.cras_server.StartStream(
            *opened, bed.cras_server.SuggestedInitialDelay());
      });
  bed.engine().RunFor(Seconds(4));
  return bed.hub.MetricsJson();
}

TEST(Snapshot, DeterministicAcrossIdenticalRuns) {
  const std::string first = RunOnceAndSnapshot();
  const std::string second = RunOnceAndSnapshot();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  // Sanity: the run actually produced instrumented activity.
  EXPECT_NE(first.find("\"cras.bytes_read\""), std::string::npos);
  EXPECT_NE(first.find("\"disk.requests\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Trace ring overflow policy: bounded memory, newest events win.
// ---------------------------------------------------------------------------

TEST(Trace, RingKeepsNewestEvents) {
  crsim::Engine engine;
  Tracer::Options options;
  options.enabled = true;
  options.capacity = 8;
  Tracer tracer(engine, options);
  const std::uint32_t track = tracer.InternTrack("t");
  const std::uint32_t name = tracer.InternName("tick");
  for (int i = 0; i < 20; ++i) {
    tracer.Instant(track, name, static_cast<double>(i));
  }
  EXPECT_EQ(tracer.size(), 8u);
  EXPECT_EQ(tracer.recorded(), 20u);
  EXPECT_EQ(tracer.dropped(), 12u);
  const std::vector<TraceEvent> events = tracer.Events();
  ASSERT_EQ(events.size(), 8u);
  // Oldest-first ordering, holding the 8 most recent values (12..19).
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(events[i].value, static_cast<double>(12 + i));
  }
}

TEST(Trace, DisabledTracerRecordsNothing) {
  crsim::Engine engine;
  Tracer tracer(engine, Tracer::Options{});
  const std::uint32_t track = tracer.InternTrack("t");
  const std::uint32_t name = tracer.InternName("tick");
  tracer.Instant(track, name);
  tracer.Begin(track, name);
  tracer.End(track, name);
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.recorded(), 0u);
}

// ---------------------------------------------------------------------------
// Chrome trace JSON well-formedness.
// ---------------------------------------------------------------------------

// Minimal recursive-descent JSON validator: accepts exactly well-formed
// JSON values (enough to guarantee chrome://tracing / Perfetto can load the
// export without a parse error).
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) {
      return false;
    }
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) {
      return false;
    }
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }
  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek('}')) {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!String()) {
        return false;
      }
      SkipWs();
      if (!Peek(':')) {
        return false;
      }
      ++pos_;
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek(',')) {
        ++pos_;
        continue;
      }
      if (Peek('}')) {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek(']')) {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek(',')) {
        ++pos_;
        continue;
      }
      if (Peek(']')) {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool String() {
    if (!Peek('"')) {
      return false;
    }
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;  // escape: consume the escaped character blindly
        if (pos_ >= s_.size()) {
          return false;
        }
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) {
      return false;
    }
    ++pos_;  // closing quote
    return true;
  }
  bool Number() {
    const std::size_t start = pos_;
    if (Peek('-')) {
      ++pos_;
    }
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Literal(const char* word) {
    const std::string w(word);
    if (s_.compare(pos_, w.size(), w) != 0) {
      return false;
    }
    pos_ += w.size();
    return true;
  }
  bool Peek(char c) const { return pos_ < s_.size() && s_[pos_] == c; }
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(Trace, ChromeJsonIsWellFormed) {
  crsim::Engine engine;
  Tracer::Options options;
  options.enabled = true;
  Tracer tracer(engine, options);
  const std::uint32_t track = tracer.InternTrack("disk0.queue");
  const std::uint32_t name = tracer.InternName("io \"quoted\"\n");  // escaping
  const std::uint32_t cat = tracer.InternName("queue");
  tracer.Begin(track, name);
  tracer.End(track, name);
  tracer.Complete(track, name, /*start=*/Milliseconds(1), /*dur=*/Milliseconds(2));
  tracer.Instant(track, name, 7.5);
  tracer.CounterSample(track, name, 42);
  tracer.AsyncBegin(track, cat, name, /*id=*/9);
  tracer.AsyncEnd(track, cat, name, /*id=*/9);

  std::ostringstream out;
  tracer.WriteChromeJson(out);
  const std::string json = out.str();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  // All seven phases present, plus thread-name metadata for the track.
  for (const char* ph : {"\"ph\": \"B\"", "\"ph\": \"E\"", "\"ph\": \"X\"", "\"ph\": \"i\"",
                         "\"ph\": \"C\"", "\"ph\": \"b\"", "\"ph\": \"e\"",
                         "\"thread_name\""}) {
    EXPECT_NE(json.find(ph), std::string::npos) << ph;
  }
  EXPECT_NE(json.find("disk0.queue"), std::string::npos);
}

TEST(Trace, MetricsJsonIsWellFormedEndToEnd) {
  const std::string json = RunOnceAndSnapshot();
  EXPECT_TRUE(JsonChecker(json).Valid());
}

}  // namespace
}  // namespace crobs
