// Parity volume: rotating-parity mapping properties, degraded-mode
// reconstruction fan-out (with an XOR check over a seeded image), write
// parity updates, and the degraded admission formulas.

#include "src/volume/parity_volume.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/random.h"
#include "src/volume/volume_admission.h"

namespace crvol {
namespace {

using crbase::kKiB;
using crbase::kMiB;
using crbase::Milliseconds;

constexpr std::int64_t kStripeUnit = 256 * kKiB;

std::int64_t Uniform(crbase::Rng& rng, std::int64_t bound) {
  return static_cast<std::int64_t>(rng.NextBelow(static_cast<std::uint64_t>(bound)));
}

VolumeOptions ParityOptions(int disks) {
  VolumeOptions options;
  options.disks = disks;
  options.parity = true;
  return options;
}

// ---------------------------------------------------------------------------
// Healthy mapping.

class ParityMapping : public ::testing::TestWithParam<int> {};

TEST_P(ParityMapping, CapacityIsDataDisksOverDisks) {
  crsim::Engine engine;
  ParityVolume volume(engine, ParityOptions(GetParam()));
  const std::int64_t unit = volume.stripe_unit_sectors();
  const std::int64_t per_disk_units = volume.geometry().total_sectors() / unit;
  EXPECT_EQ(volume.data_disks(), volume.disks() - 1);
  EXPECT_TRUE(volume.parity());
  EXPECT_EQ(volume.total_sectors(), per_disk_units * volume.data_disks() * unit);
}

TEST_P(ParityMapping, MapRoundTripsAndAvoidsParityUnits) {
  crsim::Engine engine;
  ParityVolume volume(engine, ParityOptions(GetParam()));
  crbase::Rng rng(20260806);
  for (int i = 0; i < 10000; ++i) {
    const crdisk::Lba logical = Uniform(rng, volume.total_sectors());
    const ParityVolume::Segment s = volume.Map(logical);
    ASSERT_GE(s.disk, 0);
    ASSERT_LT(s.disk, volume.disks());
    ASSERT_FALSE(volume.IsParityUnit(s.disk, s.lba));
    ASSERT_EQ(volume.ToLogical(s.disk, s.lba), logical);
  }
}

TEST_P(ParityMapping, ParityRotatesAcrossMembersRowByRow) {
  crsim::Engine engine;
  ParityVolume volume(engine, ParityOptions(GetParam()));
  const int n = volume.disks();
  const std::int64_t unit = volume.stripe_unit_sectors();
  for (std::int64_t row = 0; row < 4 * n; ++row) {
    EXPECT_EQ(volume.ParityDiskOf(row), static_cast<int>(row % n));
    // Exactly one member of the row holds parity; the others hold the row's
    // n-1 data units in ascending logical order.
    int parity_members = 0;
    std::int64_t expect_logical = row * (n - 1) * unit;
    for (int d = 0; d < n; ++d) {
      if (volume.IsParityUnit(d, row * unit)) {
        ++parity_members;
      } else {
        EXPECT_EQ(volume.ToLogical(d, row * unit), expect_logical);
        expect_logical += unit;
      }
    }
    EXPECT_EQ(parity_members, 1);
  }
}

TEST_P(ParityMapping, HealthyMapRangeTilesTheRangeInLogicalOrder) {
  crsim::Engine engine;
  ParityVolume volume(engine, ParityOptions(GetParam()));
  crbase::Rng rng(414243);
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t sectors = 1 + Uniform(rng, 3 * volume.stripe_unit_sectors());
    const crdisk::Lba start = Uniform(rng, volume.total_sectors() - sectors);
    const std::vector<ParityVolume::Segment> segments = volume.MapRange(start, sectors);
    ASSERT_FALSE(segments.empty());
    crdisk::Lba cursor = start;
    for (const ParityVolume::Segment& s : segments) {
      ASSERT_GT(s.sectors, 0);
      ASSERT_FALSE(s.reconstruction) << "healthy reads carry no redundancy pieces";
      ASSERT_EQ(volume.ToLogical(s.disk, s.lba), cursor);
      ASSERT_EQ(volume.ToLogical(s.disk, s.lba + s.sectors - 1), cursor + s.sectors - 1);
      cursor += s.sectors;
    }
    ASSERT_EQ(cursor, start + sectors);
  }
}

TEST_P(ParityMapping, WritesAddARotatingParityUpdatePerRow) {
  crsim::Engine engine;
  ParityVolume volume(engine, ParityOptions(GetParam()));
  const std::int64_t unit = volume.stripe_unit_sectors();
  crbase::Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    const std::int64_t sectors = 1 + Uniform(rng, 2 * unit);
    const crdisk::Lba start = Uniform(rng, volume.total_sectors() - sectors);
    std::int64_t data_sectors = 0;
    for (const ParityVolume::Segment& s :
         volume.MapRange(start, sectors, crdisk::IoKind::kWrite)) {
      if (s.reconstruction) {
        // A parity update: on the row's parity member, covering the written
        // span of that row.
        ASSERT_TRUE(volume.IsParityUnit(s.disk, s.lba));
        ASSERT_EQ(volume.ParityDiskOf(s.lba / unit), s.disk);
      } else {
        ASSERT_FALSE(volume.IsParityUnit(s.disk, s.lba));
        data_sectors += s.sectors;
      }
    }
    ASSERT_EQ(data_sectors, sectors);
  }
}

INSTANTIATE_TEST_SUITE_P(Disks, ParityMapping, ::testing::Values(2, 3, 4, 8));

// ---------------------------------------------------------------------------
// Degraded mapping + reconstruction.

// One byte per sector over the first `rows` rows of every member: data
// sectors get a hash of their logical address, parity sectors the XOR of
// the row's data. This is the invariant a real array maintains; the tests
// below recover lost bytes through it.
std::uint8_t HashByte(crdisk::Lba logical) {
  return static_cast<std::uint8_t>((logical * 131) ^ (logical >> 7));
}

std::vector<std::vector<std::uint8_t>> SeededImage(const ParityVolume& volume,
                                                   std::int64_t rows) {
  const int n = volume.disks();
  const std::int64_t unit = volume.stripe_unit_sectors();
  const std::int64_t depth = rows * unit;
  std::vector<std::vector<std::uint8_t>> image(
      static_cast<std::size_t>(n), std::vector<std::uint8_t>(static_cast<std::size_t>(depth)));
  for (int d = 0; d < n; ++d) {
    for (std::int64_t p = 0; p < depth; ++p) {
      if (!volume.IsParityUnit(d, p)) {
        image[static_cast<std::size_t>(d)][static_cast<std::size_t>(p)] =
            HashByte(volume.ToLogical(d, p));
      }
    }
  }
  for (std::int64_t p = 0; p < depth; ++p) {
    const int pd = volume.ParityDiskOf(p / unit);
    std::uint8_t parity = 0;
    for (int d = 0; d < n; ++d) {
      if (d != pd) {
        parity ^= image[static_cast<std::size_t>(d)][static_cast<std::size_t>(p)];
      }
    }
    image[static_cast<std::size_t>(pd)][static_cast<std::size_t>(p)] = parity;
  }
  return image;
}

TEST(ParityDegraded, SurvivorXorReconstructsEveryLostSector) {
  constexpr std::int64_t kRows = 8;
  for (int disks : {3, 4, 5}) {
    crsim::Engine engine;
    ParityVolume volume(engine, ParityOptions(disks));
    const auto image = SeededImage(volume, kRows);
    const std::int64_t span = kRows * volume.data_disks() * volume.stripe_unit_sectors();
    for (int failed = 0; failed < disks; ++failed) {
      for (crdisk::Lba logical = 0; logical < span; ++logical) {
        const ParityVolume::Segment s = volume.Map(logical);
        if (s.disk != failed) {
          continue;
        }
        std::uint8_t rebuilt = 0;
        for (int d = 0; d < disks; ++d) {
          if (d != failed) {
            rebuilt ^= image[static_cast<std::size_t>(d)][static_cast<std::size_t>(s.lba)];
          }
        }
        ASSERT_EQ(rebuilt, HashByte(logical)) << "disks=" << disks << " lba=" << logical;
      }
    }
  }
}

TEST(ParityDegraded, DegradedReadFansOutToAllSurvivors) {
  crsim::Engine engine;
  ParityVolume volume(engine, ParityOptions(4));
  const int failed = 2;
  volume.SetMemberState(failed, MemberState::kFailed);
  ASSERT_TRUE(volume.degraded());
  ASSERT_EQ(volume.failed_member(), failed);

  // A second, healthy array gives the reference split to compare piece by
  // piece.
  crsim::Engine engine2;
  ParityVolume reference(engine2, ParityOptions(4));

  const std::int64_t unit = volume.stripe_unit_sectors();
  crbase::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t sectors = 1 + Uniform(rng, 3 * unit);
    const crdisk::Lba start = Uniform(rng, volume.total_sectors() - sectors);
    crdisk::Lba cursor = start;
    const std::vector<ParityVolume::Segment> healthy_map =
        reference.MapRange(start, sectors);
    std::size_t h = 0;
    const std::vector<ParityVolume::Segment> segments = volume.MapRange(start, sectors);
    std::size_t j = 0;
    while (j < segments.size()) {
      ASSERT_LT(h, healthy_map.size());
      const ParityVolume::Segment& want = healthy_map[h++];
      if (want.disk != failed) {
        // Surviving data piece: passed through untouched.
        ASSERT_EQ(segments[j].disk, want.disk);
        ASSERT_EQ(segments[j].lba, want.lba);
        ASSERT_EQ(segments[j].sectors, want.sectors);
        ASSERT_FALSE(segments[j].reconstruction);
        cursor += want.sectors;
        ++j;
        continue;
      }
      // Lost piece: the same physical range on every survivor, flagged as
      // reconstruction I/O.
      std::vector<bool> seen(4, false);
      for (int k = 0; k < 3; ++k) {
        ASSERT_LT(j, segments.size());
        const ParityVolume::Segment& s = segments[j++];
        ASSERT_TRUE(s.reconstruction);
        ASSERT_NE(s.disk, failed);
        ASSERT_FALSE(seen[static_cast<std::size_t>(s.disk)]);
        seen[static_cast<std::size_t>(s.disk)] = true;
        ASSERT_EQ(s.lba, want.lba);
        ASSERT_EQ(s.sectors, want.sectors);
      }
      cursor += want.sectors;
    }
    ASSERT_EQ(h, healthy_map.size());
    ASSERT_EQ(cursor, start + sectors);
  }
}

TEST(ParityDegraded, RecoveryRestoresTheHealthyMapping) {
  crsim::Engine engine;
  ParityVolume volume(engine, ParityOptions(4));
  const auto before = volume.MapRange(1000, 2000);
  volume.SetMemberState(1, MemberState::kFailed);
  volume.SetMemberState(1, MemberState::kHealthy);
  EXPECT_FALSE(volume.degraded());
  const auto after = volume.MapRange(1000, 2000);
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(after[i].disk, before[i].disk);
    EXPECT_EQ(after[i].lba, before[i].lba);
    EXPECT_EQ(after[i].sectors, before[i].sectors);
  }
}

TEST(ParityDegraded, MemberStateListenerFiresOnEveryChange) {
  crsim::Engine engine;
  ParityVolume volume(engine, ParityOptions(3));
  std::vector<std::pair<int, MemberState>> changes;
  volume.SetMemberStateListener(
      [&](int disk, MemberState state) { changes.emplace_back(disk, state); });
  volume.SetMemberState(1, MemberState::kFailed);
  volume.SetMemberState(1, MemberState::kFailed);  // no-op: unchanged
  volume.SetMemberState(1, MemberState::kHealthy);
  volume.SetMemberState(2, MemberState::kSlow);
  ASSERT_EQ(changes.size(), 3u);
  EXPECT_EQ(changes[0], std::make_pair(1, MemberState::kFailed));
  EXPECT_EQ(changes[1], std::make_pair(1, MemberState::kHealthy));
  EXPECT_EQ(changes[2], std::make_pair(2, MemberState::kSlow));
}

// ---------------------------------------------------------------------------
// Degraded admission (the doubled-share variant of formulas (1)-(15)).

std::vector<cras::StreamDemand> Mpeg1Streams(int count) {
  return std::vector<cras::StreamDemand>(static_cast<std::size_t>(count),
                                         cras::StreamDemand{187500.0, 6250});
}

VolumeAdmissionModel ParityModel(int disks) {
  VolumeAdmissionModel model(cras::MeasuredSt32550nParams(), disks, Milliseconds(500),
                             256 * kKiB, kStripeUnit);
  model.set_parity(true);
  return model;
}

TEST(DegradedAdmission, OneFailureDoublesEachSurvivorsShare) {
  VolumeAdmissionModel model = ParityModel(4);
  const std::vector<cras::StreamDemand> streams = Mpeg1Streams(8);
  const VolumeAdmissionModel::Estimate healthy = model.Evaluate(streams);
  model.SetMemberFailed(1, true);
  EXPECT_EQ(model.failed_members(), 1);
  const VolumeAdmissionModel::Estimate degraded = model.Evaluate(streams);
  ASSERT_EQ(degraded.per_disk.size(), 4u);
  // The dead member is charged nothing; every survivor's byte and request
  // share doubles (its own 1/N plus 1/N of reconstruction reads).
  EXPECT_EQ(degraded.per_disk[1].bytes, 0);
  EXPECT_EQ(degraded.per_disk[1].requests, 0);
  for (int d : {0, 2, 3}) {
    EXPECT_EQ(degraded.per_disk[static_cast<std::size_t>(d)].bytes,
              2 * healthy.per_disk[static_cast<std::size_t>(d)].bytes);
    EXPECT_EQ(degraded.per_disk[static_cast<std::size_t>(d)].requests,
              2 * healthy.per_disk[static_cast<std::size_t>(d)].requests);
  }
  // Aggregate demand is a property of the streams, not the array state.
  EXPECT_EQ(degraded.bytes, healthy.bytes);
  EXPECT_EQ(degraded.buffer_bytes, healthy.buffer_bytes);
}

TEST(DegradedAdmission, DegradedCapacityLandsBetweenHalfAndHealthy) {
  auto max_admitted = [](const VolumeAdmissionModel& model) {
    int n = 0;
    while (model.Admissible(Mpeg1Streams(n + 1), std::int64_t{1} << 30)) {
      ++n;
    }
    return n;
  };
  VolumeAdmissionModel model = ParityModel(4);
  const int healthy = max_admitted(model);
  model.SetMemberFailed(0, true);
  const int degraded = max_admitted(model);
  EXPECT_LE(degraded, healthy / 2 + 1);  // doubled byte share
  // Somewhat under half: the doubled request count also doubles the seek
  // and command overhead charged against the interval.
  EXPECT_GE(degraded, 2 * healthy / 5);
  model.SetMemberFailed(0, false);
  EXPECT_EQ(max_admitted(model), healthy);
}

TEST(DegradedAdmission, UnprotectedOrDoubleFailureAdmitsNothing) {
  // A failed member of a non-parity array loses data: nothing is admissible.
  VolumeAdmissionModel striped(cras::MeasuredSt32550nParams(), 4, Milliseconds(500),
                               256 * kKiB, kStripeUnit);
  striped.SetMemberFailed(2, true);
  EXPECT_FALSE(striped.Admissible(Mpeg1Streams(1), std::int64_t{1} << 30));
  EXPECT_TRUE(striped.Admissible({}, std::int64_t{1} << 30));

  // So does a second failure of a parity array.
  VolumeAdmissionModel parity = ParityModel(4);
  parity.SetMemberFailed(0, true);
  EXPECT_TRUE(parity.Admissible(Mpeg1Streams(1), std::int64_t{1} << 30));
  parity.SetMemberFailed(3, true);
  EXPECT_FALSE(parity.Admissible(Mpeg1Streams(1), std::int64_t{1} << 30));
  EXPECT_TRUE(parity.Admissible({}, std::int64_t{1} << 30));
}

TEST(DegradedAdmission, SlowMemberParamsMakeItTheBottleneck) {
  VolumeAdmissionModel model = ParityModel(4);
  cras::DiskParams derated = cras::MeasuredSt32550nParams();
  derated.transfer_rate /= 4.0;
  model.SetMemberParams(2, derated);
  const VolumeAdmissionModel::Estimate estimate = model.Evaluate(Mpeg1Streams(10));
  EXPECT_EQ(estimate.BottleneckDisk(), 2);
  EXPECT_GT(estimate.per_disk[2].transfer, estimate.per_disk[0].transfer);
}

}  // namespace
}  // namespace crvol
