// Property tests (parameterized sweeps) for the admission model and its
// central soundness claim: any stream set the test admits plays with zero
// deadline misses and zero frame misses on the simulated hardware.

#include <gtest/gtest.h>

#include "src/base/random.h"
#include "src/core/admission.h"
#include "src/core/player.h"
#include "src/core/testbed.h"
#include "src/media/load.h"
#include "src/media/media_file.h"

namespace cras {
namespace {

using crbase::Milliseconds;
using crbase::Seconds;

// ---------------------------------------------------------------------------
// Pure-model properties over a grid of intervals and request counts.
// ---------------------------------------------------------------------------

class AdmissionFormulaProperty : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(AdmissionFormulaProperty, OverheadDecomposesPerAppendixC) {
  const std::int64_t n = GetParam();
  const DiskParams params = MeasuredSt32550nParams();
  AdmissionModel model(params, Seconds(1), 256 * crbase::kKiB);
  const crbase::Duration o_total = model.TotalOverhead(n);
  // Recompute from the individual formulas (9)-(13).
  const crbase::Duration o_other = params.t_cmd + params.t_seek_max + params.t_rot +
                                   crbase::TransferTime(params.b_other, params.transfer_rate);
  const crbase::Duration o_cmd = n * params.t_cmd;
  const crbase::Duration o_rot = n * params.t_rot;
  const crbase::Duration o_seek =
      n == 1 ? params.t_seek_max
             : 2 * params.t_seek_max + (n - 2) * params.t_seek_min;
  EXPECT_NEAR(static_cast<double>(o_total),
              static_cast<double>(o_other + o_cmd + o_rot + o_seek), 2.0)
      << "N=" << n;
}

TEST_P(AdmissionFormulaProperty, EstimateScalesLinearlyInStreams) {
  const std::int64_t n = GetParam();
  AdmissionModel model(MeasuredSt32550nParams(), Milliseconds(500), 256 * crbase::kKiB);
  const StreamDemand demand{187500.0, 6250};
  std::vector<StreamDemand> streams(static_cast<std::size_t>(n), demand);
  const AdmissionEstimate estimate = model.Evaluate(streams);
  EXPECT_EQ(estimate.bytes, n * model.BytesPerInterval(demand));
  EXPECT_EQ(estimate.buffer_bytes, n * model.BufferBytes(demand));
  EXPECT_EQ(estimate.requests, n * model.RequestsPerInterval(demand));
}

INSTANTIATE_TEST_SUITE_P(RequestCounts, AdmissionFormulaProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------------
// Soundness: admitted => plays cleanly. Swept over intervals and mixes.
// ---------------------------------------------------------------------------

struct SoundnessCase {
  const char* name;
  double interval_s;
  int mpeg1;        // how many 1.5 Mb/s streams to attempt
  int mpeg2;        // how many 6 Mb/s streams to attempt
  bool background;  // cat readers present
};

class AdmissionSoundness : public ::testing::TestWithParam<SoundnessCase> {};

TEST_P(AdmissionSoundness, AdmittedStreamsNeverMissDeadlines) {
  const SoundnessCase& c = GetParam();
  TestbedOptions options;
  options.cras.interval = crbase::SecondsF(c.interval_s);
  options.cras.memory_budget_bytes = 32 * crbase::kMiB;
  Testbed bed(options);
  bed.StartServers();

  const crbase::Duration play = Seconds(6);
  std::vector<crmedia::MediaFile> files;
  for (int i = 0; i < c.mpeg1; ++i) {
    files.push_back(*crmedia::WriteMpeg1File(bed.fs, "m1_" + std::to_string(i), play + Seconds(8)));
  }
  for (int i = 0; i < c.mpeg2; ++i) {
    files.push_back(*crmedia::WriteMpeg2File(bed.fs, "m2_" + std::to_string(i), play + Seconds(8)));
  }
  std::vector<crsim::Task> cats;
  if (c.background) {
    auto food = crmedia::WriteMpeg1File(bed.fs, "catfood", Seconds(60));
    cats.push_back(crmedia::SpawnCat(bed.kernel, bed.unix_server, food->inode, "cat"));
  }

  std::vector<std::unique_ptr<PlayerStats>> stats;
  std::vector<crsim::Task> players;
  PlayerOptions player_options;
  player_options.play_length = play;
  int i = 0;
  for (const auto& file : files) {
    player_options.start_delay = Milliseconds(113) * i++;
    stats.push_back(std::make_unique<PlayerStats>());
    players.push_back(
        SpawnCrasPlayer(bed.kernel, bed.cras_server, file, player_options, stats.back().get()));
  }
  bed.engine().RunFor(play + Seconds(10) + Milliseconds(113) * i);

  int admitted = 0;
  for (const auto& s : stats) {
    if (s->open_rejected) {
      continue;
    }
    ++admitted;
    // The guarantee: every admitted stream delivers every frame, within
    // half a frame period (the residual delay is client-side CPU queueing
    // among the many players, not data lateness — data lateness shows up
    // as frames_missed or deadline misses).
    EXPECT_EQ(s->frames_missed, 0);
    EXPECT_LE(s->max_delay(), Milliseconds(16));
  }
  EXPECT_GT(admitted, 0) << "test case admitted nothing; not exercising the property";
  EXPECT_EQ(bed.cras_server.stats().deadline_misses, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, AdmissionSoundness,
    ::testing::Values(SoundnessCase{"five_mpeg1", 0.5, 5, 0, false},
                      SoundnessCase{"capacity_mpeg1", 0.5, 14, 0, false},
                      SoundnessCase{"overload_mpeg1", 0.5, 20, 0, false},
                      SoundnessCase{"mpeg2_pair", 1.0, 0, 2, false},
                      SoundnessCase{"mixed", 1.0, 6, 2, false},
                      SoundnessCase{"mixed_loaded", 1.0, 6, 2, true},
                      SoundnessCase{"long_interval", 3.0, 10, 1, true}),
    [](const ::testing::TestParamInfo<SoundnessCase>& info) { return info.param.name; });

// ---------------------------------------------------------------------------
// VBR safety: a stream admitted at its worst-case rate plays cleanly even
// though its instantaneous rate fluctuates (paper §3.2 problem 1 is about
// the memory cost of this, not its correctness).
// ---------------------------------------------------------------------------

class VbrSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VbrSoundness, WorstRateDeclarationCoversFluctuations) {
  TestbedOptions options;
  Testbed bed(options);
  bed.StartServers();
  crbase::Rng rng(GetParam());
  crmedia::ChunkIndex index =
      crmedia::BuildVbrIndex(crmedia::kMpeg1BytesPerSec, 0.6, 30.0, Seconds(14), rng);
  auto file = crmedia::WriteMediaFile(bed.fs, "vbr", std::move(index));
  ASSERT_TRUE(file.ok());
  PlayerStats stats;
  PlayerOptions player_options;
  player_options.play_length = Seconds(10);
  crsim::Task player =
      SpawnCrasPlayer(bed.kernel, bed.cras_server, *file, player_options, &stats);
  bed.engine().RunFor(Seconds(16));
  ASSERT_FALSE(stats.open_rejected);
  EXPECT_EQ(stats.frames_missed, 0);
  EXPECT_LE(stats.max_delay(), Milliseconds(5));
  const TimeDrivenBufferStats* buffer = nullptr;
  (void)buffer;  // buffer closed with the session; overflow shows in misses
  EXPECT_EQ(bed.cras_server.stats().deadline_misses, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VbrSoundness, ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

}  // namespace
}  // namespace cras
