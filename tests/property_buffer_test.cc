// Property tests for the time-driven shared buffer: invariants under random
// operation sequences, swept over capacities and jitter allowances.

#include <gtest/gtest.h>

#include <map>

#include "src/base/random.h"
#include "src/core/time_driven_buffer.h"

namespace cras {
namespace {

using crbase::Duration;
using crbase::Milliseconds;
using crbase::Time;

struct BufferCase {
  const char* name;
  std::int64_t capacity_frames;
  std::int64_t jitter_ms;
  std::uint64_t seed;
};

class BufferInvariants : public ::testing::TestWithParam<BufferCase> {};

TEST_P(BufferInvariants, RandomOperationSequencePreservesInvariants) {
  const BufferCase& c = GetParam();
  const Duration frame = Milliseconds(33);
  const std::int64_t frame_bytes = 6250;
  TimeDrivenBuffer buffer(c.capacity_frames * frame_bytes, Milliseconds(c.jitter_ms));
  crbase::Rng rng(c.seed);

  // A reference model: map timestamp -> size, maintained with the same
  // discard rule, without the capacity bound.
  std::map<Time, std::int64_t> model;
  Time logical = -crbase::Seconds(1);
  std::int64_t produced = 0;

  for (int step = 0; step < 3000; ++step) {
    const std::uint64_t op = rng.NextBelow(100);
    if (op < 50) {
      // Put the next chunk (sometimes a duplicate of a recent one).
      std::int64_t index = produced;
      if (op < 5 && produced > 0) {
        index = static_cast<std::int64_t>(rng.NextBelow(static_cast<std::uint64_t>(produced)));
      } else {
        ++produced;
      }
      BufferedChunk chunk;
      chunk.chunk_index = index;
      chunk.timestamp = index * frame;
      chunk.duration = frame;
      chunk.size = frame_bytes;
      buffer.Put(chunk, logical);
      if (chunk.timestamp + chunk.duration > logical - buffer.jitter_allowance()) {
        model[chunk.timestamp] = chunk.size;
      }
    } else if (op < 75) {
      // Advance logical time and sweep.
      logical += static_cast<Duration>(rng.NextBelow(100)) * Milliseconds(10);
      buffer.DiscardObsolete(logical);
    } else {
      // Random get.
      const Time t = logical + static_cast<Duration>(rng.NextInRange(-2000, 2000)) *
                                   Milliseconds(1);
      std::optional<BufferedChunk> got = buffer.Get(t);
      if (got.has_value()) {
        // Whatever comes back must cover t.
        EXPECT_LE(got->timestamp, t);
        EXPECT_GT(got->timestamp + got->duration, t);
      }
    }
    // Mirror the discard rule in the model.
    const Time discard_before = logical - buffer.jitter_allowance();
    for (auto it = model.begin(); it != model.end();) {
      if (it->first + frame <= discard_before) {
        it = model.erase(it);
      } else {
        ++it;
      }
    }

    // Invariants:
    //  (1) resident bytes equals the sum of resident chunk sizes and never
    //      exceeds capacity;
    EXPECT_LE(buffer.resident_bytes(), buffer.capacity_bytes());
    EXPECT_EQ(buffer.resident_bytes(),
              static_cast<std::int64_t>(buffer.resident_chunks()) * frame_bytes);
    //  (2) the buffer holds a subset of the unbounded reference model
    //      (capacity evictions may remove more, never retain extra);
    EXPECT_LE(buffer.resident_chunks(), model.size());
  }
  //  (3) accounting identity over the whole run: every accepted put is
  //      resident, aged out, capacity-evicted, or replaced by a duplicate.
  const TimeDrivenBufferStats& stats = buffer.stats();
  EXPECT_EQ(stats.puts,
            static_cast<std::int64_t>(buffer.resident_chunks()) + stats.discarded_obsolete +
                stats.overflow_evictions + stats.replaced);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BufferInvariants,
    ::testing::Values(BufferCase{"tiny_no_jitter", 4, 0, 11},
                      BufferCase{"tiny_jittered", 4, 100, 22},
                      BufferCase{"interval_sized", 32, 100, 33},
                      BufferCase{"interval_sized_alt_seed", 32, 100, 44},
                      BufferCase{"large_long_jitter", 256, 500, 55},
                      BufferCase{"large_no_jitter", 256, 0, 66}),
    [](const ::testing::TestParamInfo<BufferCase>& info) { return info.param.name; });

}  // namespace
}  // namespace cras
