// Property tests for chunk indexes: lookup consistency over random VBR
// streams.

#include <gtest/gtest.h>

#include "src/base/random.h"
#include "src/media/chunk_index.h"

namespace crmedia {
namespace {

using crbase::Seconds;

class IndexLookupProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IndexLookupProperty, FindByTimeAgreesWithLinearScan) {
  crbase::Rng rng(GetParam());
  const ChunkIndex index = BuildVbrIndex(187500.0, 0.5, 30.0, Seconds(8), rng);
  for (int trial = 0; trial < 300; ++trial) {
    const Time t = static_cast<Time>(rng.NextInRange(-100, 9000)) * crbase::Milliseconds(1);
    const std::int64_t got = index.FindByTime(t);
    // Reference: last chunk with timestamp <= t, by linear scan.
    std::int64_t expected = -1;
    for (std::size_t i = 0; i < index.count(); ++i) {
      if (index.at(i).timestamp <= t) {
        expected = static_cast<std::int64_t>(i);
      }
    }
    EXPECT_EQ(got, expected) << "t=" << t;
  }
}

TEST_P(IndexLookupProperty, RangeByTimePartitionsConsecutiveWindows) {
  crbase::Rng rng(GetParam());
  const ChunkIndex index = BuildVbrIndex(187500.0, 0.5, 30.0, Seconds(8), rng);
  // Consecutive windows [kT, (k+1)T) must partition the chunks: every chunk
  // in exactly one window (this is precisely how the request scheduler
  // consumes the index).
  const crbase::Duration window = crbase::Milliseconds(500);
  std::int64_t covered = 0;
  std::int64_t prev_last = 0;
  for (Time t = 0; t < Seconds(9); t += window) {
    auto [first, last] = index.RangeByTime(t, t + window);
    EXPECT_EQ(first, prev_last) << "gap or overlap at window starting " << t;
    EXPECT_LE(first, last);
    covered += last - first;
    prev_last = last;
  }
  EXPECT_EQ(covered, static_cast<std::int64_t>(index.count()));
}

TEST_P(IndexLookupProperty, WorstRateIsAnUpperBoundOnWindowDemand) {
  crbase::Rng rng(GetParam());
  const ChunkIndex index = BuildVbrIndex(187500.0, 0.5, 30.0, Seconds(8), rng);
  const crbase::Duration window = crbase::Milliseconds(500);
  const double worst = index.WorstRate(window);
  // No window's actual byte demand may exceed the declared worst rate.
  for (Time t = 0; t < Seconds(8); t += crbase::Milliseconds(100)) {
    auto [first, last] = index.RangeByTime(t, t + window);
    std::int64_t bytes = 0;
    for (std::int64_t i = first; i < last; ++i) {
      bytes += index.at(static_cast<std::size_t>(i)).size;
    }
    EXPECT_LE(static_cast<double>(bytes), worst * crbase::ToSeconds(window) + 1.0)
        << "window at " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexLookupProperty,
                         ::testing::Values(21u, 22u, 23u, 24u, 25u));

}  // namespace
}  // namespace crmedia
