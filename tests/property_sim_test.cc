// Property tests for the simulation substrate: engine ordering under random
// schedules, CPU work conservation under both policies, and driver request
// conservation under random mixed workloads.

#include <gtest/gtest.h>

#include <vector>

#include "src/base/random.h"
#include "src/disk/driver.h"
#include "src/sim/awaitables.h"
#include "src/sim/cpu.h"
#include "src/sim/engine.h"
#include "src/sim/task.h"

namespace {

using crbase::Milliseconds;

class EngineOrdering : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineOrdering, RandomScheduleAndCancelFiresInOrder) {
  crsim::Engine engine;
  crbase::Rng rng(GetParam());
  std::vector<std::pair<crbase::Time, std::uint64_t>> fired;  // (time, sequence)
  std::vector<crsim::EventId> ids;
  std::uint64_t sequence = 0;
  for (int i = 0; i < 500; ++i) {
    const crbase::Time t = static_cast<crbase::Time>(rng.NextBelow(1000)) * Milliseconds(1);
    ids.push_back(engine.ScheduleAt(t, [&fired, &engine, &sequence] {
      fired.push_back({engine.Now(), sequence++});
    }));
  }
  // Cancel a random third.
  int cancelled = 0;
  for (crsim::EventId id : ids) {
    if (rng.NextBelow(3) == 0) {
      engine.Cancel(id);
      ++cancelled;
    }
  }
  engine.Run();
  EXPECT_EQ(static_cast<int>(fired.size()), 500 - cancelled);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LE(fired[i - 1].first, fired[i].first) << "time went backwards";
    EXPECT_LT(fired[i - 1].second, fired[i].second) << "callback ran twice or out of order";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineOrdering, ::testing::Values(1u, 2u, 3u, 5u, 8u));

struct CpuCase {
  const char* name;
  crsim::SchedPolicy policy;
  std::uint64_t seed;
  int jobs;
};

class CpuConservation : public ::testing::TestWithParam<CpuCase> {};

// Under any policy and any arrival pattern: total busy time equals total
// requested work, and every job eventually completes no earlier than its
// own work requires.
TEST_P(CpuConservation, WorkIsConservedAndJobsComplete) {
  const CpuCase& c = GetParam();
  crsim::Engine engine;
  crsim::Cpu cpu(engine, c.policy, Milliseconds(7));
  crbase::Rng rng(c.seed);

  struct Job {
    crbase::Duration work;
    crbase::Time arrival;
    crbase::Time finished = -1;
  };
  std::vector<Job> jobs(static_cast<std::size_t>(c.jobs));
  crbase::Duration total_work = 0;
  std::vector<crsim::Task> tasks;
  for (Job& job : jobs) {
    job.work = static_cast<crbase::Duration>(rng.NextBelow(40) + 1) * Milliseconds(1);
    job.arrival = static_cast<crbase::Time>(rng.NextBelow(100)) * Milliseconds(1);
    total_work += job.work;
    const int priority = static_cast<int>(rng.NextBelow(5));
    tasks.push_back([](crsim::Engine& eng, crsim::Cpu& processor, Job* j,
                       int prio) -> crsim::Task {
      co_await crsim::Sleep(eng, j->arrival);
      co_await processor.Run(prio, j->work);
      j->finished = eng.Now();
    }(engine, cpu, &job, priority));
  }
  engine.Run();
  EXPECT_EQ(cpu.busy_time(), total_work);
  EXPECT_EQ(cpu.load(), 0u);
  for (const Job& job : jobs) {
    ASSERT_GE(job.finished, 0) << "job never completed";
    EXPECT_GE(job.finished, job.arrival + job.work);
    // And no later than if it ran dead last behind everything.
    EXPECT_LE(job.finished, Milliseconds(100) + total_work);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, CpuConservation,
    ::testing::Values(CpuCase{"fp_small", crsim::SchedPolicy::kFixedPriority, 31, 10},
                      CpuCase{"fp_large", crsim::SchedPolicy::kFixedPriority, 32, 60},
                      CpuCase{"rr_small", crsim::SchedPolicy::kRoundRobin, 33, 10},
                      CpuCase{"rr_large", crsim::SchedPolicy::kRoundRobin, 34, 60}),
    [](const ::testing::TestParamInfo<CpuCase>& info) { return info.param.name; });

class DriverConservation : public ::testing::TestWithParam<std::uint64_t> {};

// Every submitted request completes exactly once; realtime requests are
// never outlasted by normal requests submitted at the same instant.
TEST_P(DriverConservation, AllRequestsCompleteExactlyOnce) {
  crsim::Engine engine;
  crdisk::DiskDevice::Options device_options;
  device_options.geometry = crdisk::St32550nGeometry();
  crdisk::DiskDevice device(engine, device_options);
  crdisk::DiskDriver driver(engine, device);
  crbase::Rng rng(GetParam());

  const int kRequests = 200;
  std::vector<int> completions(kRequests, 0);
  crbase::Time last_rt_done = 0;
  crbase::Time first_normal_done = 0;
  int submitted_rt = 0;
  for (int i = 0; i < kRequests; ++i) {
    crdisk::DiskRequest req;
    req.lba = static_cast<crdisk::Lba>(
        rng.NextBelow(static_cast<std::uint64_t>(device.geometry().total_sectors() - 256)));
    req.sectors = static_cast<std::int64_t>(rng.NextBelow(255)) + 1;
    req.realtime = rng.NextBelow(2) == 0;
    submitted_rt += req.realtime ? 1 : 0;
    req.on_complete = [&completions, &last_rt_done, &first_normal_done, &engine,
                       i](const crdisk::DiskCompletion& done) {
      ++completions[static_cast<std::size_t>(i)];
      if (done.realtime) {
        last_rt_done = std::max(last_rt_done, engine.Now());
      } else if (first_normal_done == 0) {
        first_normal_done = engine.Now();
      }
    };
    driver.Submit(std::move(req));
  }
  engine.Run();
  for (int i = 0; i < kRequests; ++i) {
    EXPECT_EQ(completions[static_cast<std::size_t>(i)], 1) << "request " << i;
  }
  EXPECT_EQ(driver.realtime_stats().completed, submitted_rt);
  EXPECT_EQ(driver.normal_stats().completed, kRequests - submitted_rt);
  // All submitted at t=0: the whole RT queue drains before any normal
  // request other than the very first dispatch (which may have grabbed the
  // idle device before any RT request arrived).
  if (submitted_rt > 1 && first_normal_done > 0) {
    const crdisk::DriverQueueStats& normal = driver.normal_stats();
    EXPECT_GT(normal.total_queue_time, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DriverConservation, ::testing::Values(5u, 6u, 7u, 8u));

}  // namespace
