// Property tests for the file-system allocator and extent mapping, swept
// over allocation policies and random workloads.

#include <gtest/gtest.h>

#include <set>

#include "src/base/bytes.h"
#include "src/base/random.h"
#include "src/ufs/ufs.h"

namespace crufs {
namespace {

using crbase::kKiB;

struct UfsCase {
  const char* name;
  bool tuned;
  std::uint64_t seed;
  int files;
  int rounds;
};

class AllocatorInvariants : public ::testing::TestWithParam<UfsCase> {};

// Runs a random create/append/remove/fragment workload and checks global
// allocator invariants after every operation.
TEST_P(AllocatorInvariants, RandomWorkloadKeepsAccountingConsistent) {
  const UfsCase& c = GetParam();
  Ufs::Options options;
  options.policy = c.tuned ? TunedPolicy() : StockPolicy();
  Ufs fs(options);
  crbase::Rng rng(c.seed);

  std::vector<std::string> live;
  auto check_invariants = [&fs, &live] {
    // No block is owned by two files, and free accounting matches.
    std::set<std::int64_t> owned;
    std::int64_t owned_count = 0;
    for (const std::string& name : live) {
      auto inode_number = fs.Lookup(name);
      ASSERT_TRUE(inode_number.ok());
      const Inode& inode = fs.inode(*inode_number);
      for (std::int64_t block : inode.block_map) {
        ASSERT_GE(block, 0);
        ASSERT_LT(block, fs.total_blocks());
        ASSERT_TRUE(owned.insert(block).second) << "block " << block << " double-owned";
        ++owned_count;
      }
      // Size accounting: enough blocks to cover the byte size.
      ASSERT_EQ(static_cast<std::int64_t>(inode.block_map.size()),
                (inode.size_bytes + kBlockSize - 1) / kBlockSize);
    }
    ASSERT_EQ(fs.free_blocks(), fs.total_blocks() - owned_count);
  };

  for (int round = 0; round < c.rounds; ++round) {
    const std::uint64_t op = rng.NextBelow(100);
    if (op < 35 && static_cast<int>(live.size()) < c.files) {
      const std::string name = "f" + std::to_string(round);
      auto created = fs.Create(name);
      ASSERT_TRUE(created.ok());
      ASSERT_TRUE(fs.Append(*created, static_cast<std::int64_t>(rng.NextBelow(64) + 1) * 64 *
                                          kKiB).ok());
      live.push_back(name);
    } else if (op < 60 && !live.empty()) {
      // Append more to a random file.
      const std::string& name = live[rng.NextBelow(live.size())];
      ASSERT_TRUE(
          fs.Append(*fs.Lookup(name), static_cast<std::int64_t>(rng.NextBelow(32) + 1) * 8 * kKiB)
              .ok());
    } else if (op < 80 && !live.empty()) {
      // Remove a random file.
      const std::size_t victim = rng.NextBelow(live.size());
      ASSERT_TRUE(fs.Remove(live[victim]).ok());
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    } else if (!live.empty()) {
      // Fragment a random file (block count and ownership must be conserved).
      const std::string& name = live[rng.NextBelow(live.size())];
      ASSERT_TRUE(fs.Fragment(*fs.Lookup(name), rng).ok());
    }
    check_invariants();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, AllocatorInvariants,
    ::testing::Values(UfsCase{"tuned_small", true, 101, 8, 60},
                      UfsCase{"tuned_churn", true, 202, 4, 100},
                      UfsCase{"stock_small", false, 303, 8, 60},
                      UfsCase{"stock_churn", false, 404, 4, 100}),
    [](const ::testing::TestParamInfo<UfsCase>& info) { return info.param.name; });

class ExtentProperty : public ::testing::TestWithParam<std::uint64_t> {};

// GetExtents must tile the requested range exactly: extent sectors map
// 1:1 onto the file's block map, in order, with no extent crossing a
// discontiguity and none exceeding the size cap.
TEST_P(ExtentProperty, ExtentsTileTheBlockMap) {
  Ufs fs;
  crbase::Rng rng(GetParam());
  InodeNumber n = *fs.Create("movie");
  ASSERT_TRUE(fs.Append(n, 8 * crbase::kMiB).ok());
  if (GetParam() % 2 == 0) {
    ASSERT_TRUE(fs.Fragment(n, rng).ok());
  }
  const Inode& inode = fs.inode(n);

  for (int trial = 0; trial < 50; ++trial) {
    const std::int64_t offset =
        static_cast<std::int64_t>(rng.NextBelow(static_cast<std::uint64_t>(inode.size_bytes)));
    const std::int64_t length = static_cast<std::int64_t>(
        rng.NextBelow(static_cast<std::uint64_t>(inode.size_bytes - offset)) + 1);
    const std::int64_t max_extent = (1 + static_cast<std::int64_t>(rng.NextBelow(32))) * 8 * kKiB;
    auto extents = fs.GetExtents(n, offset, length, max_extent);
    ASSERT_TRUE(extents.ok());

    const std::int64_t first_block = offset / kBlockSize;
    const std::int64_t last_block = (offset + length - 1) / kBlockSize;
    std::int64_t fb = first_block;
    for (const Extent& extent : *extents) {
      ASSERT_LE(extent.bytes(), max_extent);
      ASSERT_EQ(extent.sectors % fs.sectors_per_block(), 0);
      const std::int64_t blocks = extent.sectors / fs.sectors_per_block();
      for (std::int64_t b = 0; b < blocks; ++b) {
        ASSERT_LE(fb, last_block);
        ASSERT_EQ(extent.lba + b * fs.sectors_per_block(),
                  inode.block_map[static_cast<std::size_t>(fb)] * fs.sectors_per_block())
            << "extent does not match the block map at file block " << fb;
        ++fb;
      }
    }
    ASSERT_EQ(fb, last_block + 1) << "extents did not cover the full range";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtentProperty, ::testing::Values(1u, 2u, 3u, 4u, 10u, 11u));

}  // namespace
}  // namespace crufs
