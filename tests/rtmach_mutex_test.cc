// Priority-inversion tests: the classic three-thread scenario with and
// without priority inheritance.

#include "src/rtmach/mutex.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/base/time_units.h"

namespace crrt {
namespace {

using crbase::Milliseconds;
using crbase::Time;

TEST(Mutex, BasicLockUnlock) {
  Kernel kernel;
  Mutex mutex(kernel, Mutex::Protocol::kNone);
  std::vector<int> order;
  auto worker = [&](int id, int priority) {
    return kernel.Spawn("w" + std::to_string(id), priority,
                        [&, id](ThreadContext& ctx) -> crsim::Task {
                          co_await mutex.Lock(ctx);
                          co_await ctx.Sleep(Milliseconds(10));
                          order.push_back(id);
                          mutex.Unlock();
                        });
  };
  crsim::Task a = worker(1, 5);
  crsim::Task b = worker(2, 5);
  kernel.engine().Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_FALSE(mutex.locked());
}

TEST(Mutex, HighestPriorityWaiterAcquiresFirst) {
  Kernel kernel;
  Mutex mutex(kernel, Mutex::Protocol::kNone);
  std::vector<int> order;
  crsim::Task holder = kernel.Spawn("holder", 5, [&](ThreadContext& ctx) -> crsim::Task {
    co_await mutex.Lock(ctx);
    co_await ctx.Sleep(Milliseconds(20));
    mutex.Unlock();
  });
  auto waiter = [&](int id, int priority) {
    return kernel.Spawn("waiter" + std::to_string(id), priority,
                        [&, id](ThreadContext& ctx) -> crsim::Task {
                          co_await ctx.Sleep(Milliseconds(1));
                          co_await mutex.Lock(ctx);
                          order.push_back(id);
                          mutex.Unlock();
                        });
  };
  crsim::Task lo = waiter(1, 1);
  crsim::Task hi = waiter(2, 9);
  crsim::Task mid = waiter(3, 5);
  kernel.engine().Run();
  EXPECT_EQ(order, (std::vector<int>{2, 3, 1}));
}

// The classic scenario: a low-priority thread takes the lock and needs
// 20 ms of CPU inside it; a medium-priority CPU hog runs for 200 ms; a
// high-priority thread arrives and blocks on the lock.
//
// Without inheritance the holder only gets the CPU after the hog finishes:
// the high thread waits ~220 ms (unbounded inversion). With inheritance the
// holder computes at the waiter's priority, preempts the hog, and the high
// thread gets the lock after ~the critical section.
Time MeasureInversion(Mutex::Protocol protocol) {
  Kernel kernel;
  Mutex mutex(kernel, protocol);
  Time high_acquired = -1;

  crsim::Task low = kernel.Spawn("low", 1, [&](ThreadContext& ctx) -> crsim::Task {
    co_await mutex.Lock(ctx);
    co_await mutex.LockedCompute(Milliseconds(20));
    mutex.Unlock();
  });
  crsim::Task medium = kernel.Spawn("medium", 5, [&](ThreadContext& ctx) -> crsim::Task {
    co_await ctx.Sleep(Milliseconds(1));
    co_await ctx.Compute(Milliseconds(200));
  });
  crsim::Task high = kernel.Spawn("high", 9, [&](ThreadContext& ctx) -> crsim::Task {
    co_await ctx.Sleep(Milliseconds(2));
    co_await mutex.Lock(ctx);
    high_acquired = ctx.Now();
    mutex.Unlock();
  });
  kernel.engine().Run();
  CRAS_CHECK(high_acquired >= 0);
  return high_acquired;
}

TEST(Mutex, UnboundedInversionWithoutInheritance) {
  const Time acquired = MeasureInversion(Mutex::Protocol::kNone);
  // The hog's full 200 ms sits in front of the holder's critical section.
  EXPECT_GT(acquired, Milliseconds(200));
}

TEST(Mutex, InheritanceBoundsTheInversion) {
  const Time acquired = MeasureInversion(Mutex::Protocol::kPriorityInheritance);
  // Bounded by the critical section, not by the hog.
  EXPECT_LT(acquired, Milliseconds(25));
}

TEST(Mutex, EffectivePriorityTracksWaiters) {
  Kernel kernel;
  Mutex mutex(kernel, Mutex::Protocol::kPriorityInheritance);
  bool release = false;
  crsim::Task low = kernel.Spawn("low", 1, [&](ThreadContext& ctx) -> crsim::Task {
    co_await mutex.Lock(ctx);
    while (!release) {
      co_await ctx.Sleep(Milliseconds(1));
    }
    mutex.Unlock();
  });
  EXPECT_EQ(mutex.EffectivePriority(), 1);
  crsim::Task high = kernel.Spawn("high", 9, [&](ThreadContext& ctx) -> crsim::Task {
    co_await mutex.Lock(ctx);
    mutex.Unlock();
  });
  kernel.engine().RunFor(Milliseconds(5));
  EXPECT_EQ(mutex.waiters(), 1u);
  EXPECT_EQ(mutex.EffectivePriority(), 9);  // inherited
  release = true;
  kernel.engine().RunFor(Milliseconds(5));
  EXPECT_FALSE(mutex.locked());
}

TEST(Mutex, NoInheritanceKeepsHolderPriority) {
  Kernel kernel;
  Mutex mutex(kernel, Mutex::Protocol::kNone);
  bool release = false;
  crsim::Task low = kernel.Spawn("low", 1, [&](ThreadContext& ctx) -> crsim::Task {
    co_await mutex.Lock(ctx);
    while (!release) {
      co_await ctx.Sleep(Milliseconds(1));
    }
    mutex.Unlock();
  });
  crsim::Task high = kernel.Spawn("high", 9, [&](ThreadContext& ctx) -> crsim::Task {
    co_await mutex.Lock(ctx);
    mutex.Unlock();
  });
  kernel.engine().RunFor(Milliseconds(5));
  EXPECT_EQ(mutex.EffectivePriority(), 1);  // no boost
  release = true;
  kernel.engine().RunFor(Milliseconds(5));
}

}  // namespace
}  // namespace crrt
