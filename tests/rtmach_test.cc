// Kernel facade and periodic-thread tests.

#include "src/rtmach/kernel.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/base/time_units.h"
#include "src/rtmach/periodic.h"
#include "src/sim/port.h"

namespace crrt {
namespace {

using crbase::Milliseconds;
using crbase::Seconds;

TEST(Kernel, SpawnRunsNamedThread) {
  Kernel kernel;
  std::string seen_name;
  int seen_priority = 0;
  crsim::Task t = kernel.Spawn("worker", kPriorityServer, [&](ThreadContext& ctx) -> crsim::Task {
    seen_name = ctx.name();
    seen_priority = ctx.priority();
    co_return;
  });
  kernel.engine().Run();
  EXPECT_EQ(seen_name, "worker");
  EXPECT_EQ(seen_priority, kPriorityServer);
  EXPECT_TRUE(t.done());
  EXPECT_EQ(kernel.live_threads(), 0u);
}

TEST(Kernel, ComputeChargesCpuAtThreadPriority) {
  Kernel kernel;
  std::vector<std::string> completion_order;
  crsim::Task lo = kernel.Spawn("lo", kPriorityTimesharing, [&](ThreadContext& ctx) -> crsim::Task {
    co_await ctx.Compute(Milliseconds(20));
    completion_order.push_back("lo");
  });
  crsim::Task hi = kernel.Spawn("hi", kPriorityServer, [&](ThreadContext& ctx) -> crsim::Task {
    co_await ctx.Compute(Milliseconds(20));
    completion_order.push_back("hi");
  });
  kernel.engine().Run();
  ASSERT_EQ(completion_order.size(), 2u);
  EXPECT_EQ(completion_order[0], "hi");
}

TEST(Kernel, WiredMemoryAccounting) {
  Kernel kernel;
  kernel.WireMemory("cras", 250 * 1024);
  kernel.WireMemory("buffers", 4 * 1024 * 1024);
  EXPECT_EQ(kernel.wired_bytes(), 250 * 1024 + 4 * 1024 * 1024);
  kernel.UnwireMemory("buffers", 4 * 1024 * 1024);
  EXPECT_EQ(kernel.wired_bytes(), 250 * 1024);
}

TEST(PeriodicTimer, TicksAtExactBoundaries) {
  Kernel kernel;
  std::vector<crbase::Time> ticks;
  crsim::Task t = kernel.Spawn("periodic", kPriorityServer, [&](ThreadContext& ctx) -> crsim::Task {
    PeriodicTimer timer(ctx.kernel().engine(), Milliseconds(500));
    for (int i = 0; i < 4; ++i) {
      PeriodTick tick = co_await timer.NextPeriod();
      ticks.push_back(ctx.Now());
      EXPECT_EQ(tick.index, i + 1);
      EXPECT_EQ(tick.lateness, 0);
    }
  });
  kernel.engine().Run();
  ASSERT_EQ(ticks.size(), 4u);
  EXPECT_EQ(ticks[0], Milliseconds(500));
  EXPECT_EQ(ticks[3], Milliseconds(2000));
}

TEST(PeriodicTimer, OverrunReportsDeadlineMiss) {
  Kernel kernel;
  crsim::Port<DeadlineMiss> deadline_port(kernel.engine());
  std::vector<DeadlineMiss> misses;
  crsim::Task consumer =
      kernel.Spawn("deadline-mgr", kPriorityServerHigh, [&](ThreadContext&) -> crsim::Task {
        DeadlineMiss miss = co_await deadline_port.Receive();
        misses.push_back(miss);
      });
  crsim::Task t = kernel.Spawn("overrunner", kPriorityServer, [&](ThreadContext& ctx) -> crsim::Task {
    PeriodicTimer timer(ctx.kernel().engine(), Milliseconds(100), &deadline_port);
    PeriodTick first = co_await timer.NextPeriod();
    EXPECT_EQ(first.lateness, 0);
    // Overrun the next period by 30 ms of blocking work.
    co_await ctx.Sleep(Milliseconds(130));
    PeriodTick late = co_await timer.NextPeriod();
    EXPECT_EQ(late.lateness, Milliseconds(30));
    EXPECT_EQ(timer.deadline_misses(), 1);
  });
  kernel.engine().Run();
  ASSERT_EQ(misses.size(), 1u);
  EXPECT_EQ(misses[0].overrun, Milliseconds(30));
  EXPECT_EQ(misses[0].period_index, 2);
}

TEST(PeriodicTimer, CatchesUpAfterLongOverrun) {
  Kernel kernel;
  std::vector<std::int64_t> indices;
  crsim::Task t = kernel.Spawn("p", kPriorityServer, [&](ThreadContext& ctx) -> crsim::Task {
    PeriodicTimer timer(ctx.kernel().engine(), Milliseconds(100));
    co_await ctx.Sleep(Milliseconds(350));  // miss boundaries 1, 2, 3
    for (int i = 0; i < 3; ++i) {
      PeriodTick tick = co_await timer.NextPeriod();
      indices.push_back(tick.index);
    }
  });
  kernel.engine().Run();
  // Periods 1..3 fire immediately (late), then the timer realigns.
  ASSERT_EQ(indices.size(), 3u);
  EXPECT_EQ(indices[0], 1);
  EXPECT_EQ(indices[2], 3);
}

TEST(Kernel, RoundRobinPolicySelectable) {
  Kernel::Options options;
  options.policy = crsim::SchedPolicy::kRoundRobin;
  options.quantum = Milliseconds(5);
  Kernel kernel(options);
  EXPECT_EQ(kernel.cpu().policy(), crsim::SchedPolicy::kRoundRobin);
  EXPECT_EQ(kernel.cpu().quantum(), Milliseconds(5));
}

}  // namespace
}  // namespace crrt
