#include "src/sim/cpu.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/base/time_units.h"
#include "src/sim/awaitables.h"
#include "src/sim/task.h"

namespace crsim {
namespace {

using crbase::Milliseconds;
using crbase::Time;

struct Completion {
  std::string name;
  Time at;
};

Task Work(Cpu& cpu, int priority, Duration work, std::string name, Engine& e,
          std::vector<Completion>* log) {
  co_await cpu.Run(priority, work);
  log->push_back({std::move(name), e.Now()});
}

TEST(Cpu, SingleRequestTakesExactlyItsWork) {
  Engine e;
  Cpu cpu(e, SchedPolicy::kFixedPriority);
  std::vector<Completion> log;
  Task t = Work(cpu, 5, Milliseconds(30), "a", e, &log);
  e.Run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].at, Milliseconds(30));
  EXPECT_EQ(cpu.busy_time(), Milliseconds(30));
}

TEST(Cpu, ZeroWorkCompletesImmediately) {
  Engine e;
  Cpu cpu(e, SchedPolicy::kFixedPriority);
  std::vector<Completion> log;
  Task t = Work(cpu, 5, 0, "a", e, &log);
  EXPECT_TRUE(t.done());
}

TEST(Cpu, FixedPriorityRunsHigherFirst) {
  Engine e;
  Cpu cpu(e, SchedPolicy::kFixedPriority);
  std::vector<Completion> log;
  // Both arrive at t=0; high priority must finish first even though it was
  // enqueued second.
  Task lo = Work(cpu, 1, Milliseconds(10), "lo", e, &log);
  Task hi = Work(cpu, 9, Milliseconds(10), "hi", e, &log);
  e.Run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].name, "hi");
  EXPECT_EQ(log[1].name, "lo");
  EXPECT_EQ(log[1].at, Milliseconds(20));
}

TEST(Cpu, FixedPriorityPreemptsImmediately) {
  Engine e;
  Cpu cpu(e, SchedPolicy::kFixedPriority);
  std::vector<Completion> log;
  Task lo = Work(cpu, 1, Milliseconds(100), "lo", e, &log);
  Task spawner = [](Engine& eng, Cpu& c, std::vector<Completion>* l) -> Task {
    co_await Sleep(eng, Milliseconds(10));
    co_await c.Run(9, Milliseconds(5));
    l->push_back({"hi", eng.Now()});
  }(e, cpu, &log);
  e.Run();
  ASSERT_EQ(log.size(), 2u);
  // hi arrives at 10ms, runs 5ms, finishes at 15ms; lo resumes and finishes
  // its remaining 90ms at 105ms.
  EXPECT_EQ(log[0].name, "hi");
  EXPECT_EQ(log[0].at, Milliseconds(15));
  EXPECT_EQ(log[1].name, "lo");
  EXPECT_EQ(log[1].at, Milliseconds(105));
}

TEST(Cpu, FixedPriorityEqualPrioritiesAreFifo) {
  Engine e;
  Cpu cpu(e, SchedPolicy::kFixedPriority);
  std::vector<Completion> log;
  Task a = Work(cpu, 5, Milliseconds(10), "a", e, &log);
  Task b = Work(cpu, 5, Milliseconds(10), "b", e, &log);
  Task c = Work(cpu, 5, Milliseconds(10), "c", e, &log);
  e.Run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0].name, "a");
  EXPECT_EQ(log[1].name, "b");
  EXPECT_EQ(log[2].name, "c");
}

TEST(Cpu, RoundRobinSharesWithQuantum) {
  Engine e;
  Cpu cpu(e, SchedPolicy::kRoundRobin, Milliseconds(10));
  std::vector<Completion> log;
  // Two 20ms jobs: with a 10ms quantum they interleave a,b,a,b and finish at
  // 30 and 40ms regardless of priority.
  Task a = Work(cpu, 1, Milliseconds(20), "a", e, &log);
  Task b = Work(cpu, 9, Milliseconds(20), "b", e, &log);
  e.Run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].name, "a");
  EXPECT_EQ(log[0].at, Milliseconds(30));
  EXPECT_EQ(log[1].name, "b");
  EXPECT_EQ(log[1].at, Milliseconds(40));
}

TEST(Cpu, RoundRobinIgnoresPriority) {
  Engine e;
  Cpu cpu(e, SchedPolicy::kRoundRobin, Milliseconds(10));
  std::vector<Completion> log;
  Task lo = Work(cpu, 1, Milliseconds(10), "lo", e, &log);
  Task hi = Work(cpu, 9, Milliseconds(10), "hi", e, &log);
  e.Run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].name, "lo");  // FIFO order, not priority order
}

TEST(Cpu, RoundRobinShortJobFinishesWithinQuantum) {
  Engine e;
  Cpu cpu(e, SchedPolicy::kRoundRobin, Milliseconds(10));
  std::vector<Completion> log;
  Task a = Work(cpu, 0, Milliseconds(4), "a", e, &log);
  Task b = Work(cpu, 0, Milliseconds(4), "b", e, &log);
  e.Run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].at, Milliseconds(4));
  EXPECT_EQ(log[1].at, Milliseconds(8));
}

TEST(Cpu, BusyTimeAccountsAllWork) {
  Engine e;
  Cpu cpu(e, SchedPolicy::kRoundRobin, Milliseconds(7));
  std::vector<Completion> log;
  Task a = Work(cpu, 0, Milliseconds(33), "a", e, &log);
  Task b = Work(cpu, 0, Milliseconds(19), "b", e, &log);
  e.Run();
  EXPECT_EQ(cpu.busy_time(), Milliseconds(52));
}

TEST(Cpu, PreemptionConservesTotalWork) {
  Engine e;
  Cpu cpu(e, SchedPolicy::kFixedPriority);
  std::vector<Completion> log;
  Task lo = Work(cpu, 1, Milliseconds(50), "lo", e, &log);
  // Three high-priority 5ms interruptions.
  Task intr = [](Engine& eng, Cpu& c, std::vector<Completion>* l) -> Task {
    for (int i = 0; i < 3; ++i) {
      co_await Sleep(eng, Milliseconds(10));
      co_await c.Run(9, Milliseconds(5));
    }
    l->push_back({"intr", eng.Now()});
  }(e, cpu, &log);
  e.Run();
  // lo needs 50ms of CPU; 15ms of interruptions inserted => finishes at 65ms.
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[1].name, "lo");
  EXPECT_EQ(log[1].at, Milliseconds(65));
  EXPECT_EQ(cpu.busy_time(), Milliseconds(65));
}

TEST(Cpu, LoadReportsQueuedAndRunning) {
  Engine e;
  Cpu cpu(e, SchedPolicy::kFixedPriority);
  std::vector<Completion> log;
  Task a = Work(cpu, 1, Milliseconds(10), "a", e, &log);
  Task b = Work(cpu, 1, Milliseconds(10), "b", e, &log);
  EXPECT_EQ(cpu.load(), 2u);
  e.Run();
  EXPECT_EQ(cpu.load(), 0u);
}

}  // namespace
}  // namespace crsim
