#include "src/sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/base/time_units.h"

namespace crsim {
namespace {

using crbase::Milliseconds;
using crbase::Seconds;

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_EQ(e.Now(), 0);
  EXPECT_EQ(e.pending_events(), 0u);
}

TEST(Engine, EventsFireInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.ScheduleAt(Milliseconds(30), [&] { order.push_back(3); });
  e.ScheduleAt(Milliseconds(10), [&] { order.push_back(1); });
  e.ScheduleAt(Milliseconds(20), [&] { order.push_back(2); });
  e.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.Now(), Milliseconds(30));
}

TEST(Engine, EqualTimesFireInScheduleOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.ScheduleAt(Milliseconds(5), [&order, i] { order.push_back(i); });
  }
  e.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(Engine, ScheduleAfterIsRelative) {
  Engine e;
  Time fired_at = -1;
  e.ScheduleAt(Seconds(1), [&] {
    e.ScheduleAfter(Milliseconds(250), [&] { fired_at = e.Now(); });
  });
  e.Run();
  EXPECT_EQ(fired_at, Seconds(1) + Milliseconds(250));
}

TEST(Engine, PastTimesClampToNow) {
  Engine e;
  e.ScheduleAt(Seconds(1), [] {});
  e.Run();
  Time fired_at = -1;
  e.ScheduleAfter(-Milliseconds(5), [&] { fired_at = e.Now(); });
  e.Run();
  EXPECT_EQ(fired_at, Seconds(1));
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool fired = false;
  EventId id = e.ScheduleAt(Milliseconds(1), [&] { fired = true; });
  e.Cancel(id);
  e.Run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(e.events_fired(), 0u);
}

TEST(Engine, CancelUnknownIdIsNoop) {
  Engine e;
  e.Cancel(kInvalidEventId);
  e.Cancel(9999);
  bool fired = false;
  e.ScheduleAfter(0, [&] { fired = true; });
  e.Run();
  EXPECT_TRUE(fired);
}

TEST(Engine, RunUntilAdvancesClockExactly) {
  Engine e;
  int fired = 0;
  e.ScheduleAt(Milliseconds(10), [&] { ++fired; });
  e.ScheduleAt(Milliseconds(90), [&] { ++fired; });
  e.RunUntil(Milliseconds(50));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.Now(), Milliseconds(50));
  e.Run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, RunForIsRelative) {
  Engine e;
  e.ScheduleAt(Milliseconds(10), [] {});
  e.RunFor(Milliseconds(25));
  EXPECT_EQ(e.Now(), Milliseconds(25));
  e.RunFor(Milliseconds(25));
  EXPECT_EQ(e.Now(), Milliseconds(50));
}

TEST(Engine, StopHaltsRun) {
  Engine e;
  int fired = 0;
  e.ScheduleAt(Milliseconds(1), [&] {
    ++fired;
    e.Stop();
  });
  e.ScheduleAt(Milliseconds(2), [&] { ++fired; });
  e.Run();
  EXPECT_EQ(fired, 1);
  e.Run();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(Engine, EventsCanScheduleEvents) {
  Engine e;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) {
      e.ScheduleAfter(Milliseconds(1), chain);
    }
  };
  e.ScheduleAfter(0, chain);
  e.Run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(e.Now(), Milliseconds(99));
}

TEST(Engine, StepRunsExactlyOneEvent) {
  Engine e;
  int fired = 0;
  e.ScheduleAfter(1, [&] { ++fired; });
  e.ScheduleAfter(2, [&] { ++fired; });
  EXPECT_TRUE(e.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(e.Step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(e.Step());
}

TEST(Engine, StepSkipsCancelledEvents) {
  Engine e;
  int fired = 0;
  EventId a = e.ScheduleAfter(1, [&] { ++fired; });
  e.ScheduleAfter(2, [&] { ++fired; });
  e.Cancel(a);
  EXPECT_TRUE(e.Step());  // skips the cancelled event, runs the live one
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(e.Step());
}

}  // namespace
}  // namespace crsim
