#include "src/sim/port.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/base/time_units.h"
#include "src/sim/awaitables.h"
#include "src/sim/semaphore.h"
#include "src/sim/task.h"

namespace crsim {
namespace {

using crbase::Milliseconds;

TEST(Port, TryReceiveOnEmptyFails) {
  Engine e;
  Port<int> port(e);
  int out = 0;
  EXPECT_FALSE(port.TryReceive(&out));
}

TEST(Port, SendThenTryReceiveIsFifo) {
  Engine e;
  Port<int> port(e);
  port.Send(1);
  port.Send(2);
  port.Send(3);
  EXPECT_EQ(port.size(), 3u);
  int out = 0;
  EXPECT_TRUE(port.TryReceive(&out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(port.TryReceive(&out));
  EXPECT_EQ(out, 2);
  EXPECT_TRUE(port.TryReceive(&out));
  EXPECT_EQ(out, 3);
  EXPECT_TRUE(port.empty());
}

Task Receiver(Port<int>& port, std::vector<int>* out, int count) {
  for (int i = 0; i < count; ++i) {
    const int v = co_await port.Receive();
    out->push_back(v);
  }
}

TEST(Port, ReceiveOnNonEmptyDoesNotSuspend) {
  Engine e;
  Port<int> port(e);
  port.Send(7);
  std::vector<int> got;
  Task t = Receiver(port, &got, 1);
  EXPECT_TRUE(t.done());
  EXPECT_EQ(got, std::vector<int>{7});
}

TEST(Port, BlockedReceiverWokenBySend) {
  Engine e;
  Port<int> port(e);
  std::vector<int> got;
  Task t = Receiver(port, &got, 2);
  EXPECT_FALSE(t.done());
  e.ScheduleAt(Milliseconds(10), [&] { port.Send(1); });
  e.ScheduleAt(Milliseconds(20), [&] { port.Send(2); });
  e.Run();
  EXPECT_TRUE(t.done());
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

TEST(Port, MultipleWaitersServedFifo) {
  Engine e;
  Port<std::string> port(e);
  std::vector<std::string> log;
  // Coroutine parameters must be taken by value: a reference parameter would
  // dangle once the caller's temporary dies at the first suspension point.
  auto waiter = [](Port<std::string>& p, std::vector<std::string>* out, std::string tag) -> Task {
    const std::string v = co_await p.Receive();
    out->push_back(tag + ":" + v);
  };
  Task a = waiter(port, &log, "a");
  Task b = waiter(port, &log, "b");
  port.Send("x");
  port.Send("y");
  e.Run();
  EXPECT_EQ(log, (std::vector<std::string>{"a:x", "b:y"}));
}

TEST(Port, DirectHandoffBypassesQueue) {
  Engine e;
  Port<int> port(e);
  std::vector<int> got;
  Task t = Receiver(port, &got, 1);
  port.Send(5);
  EXPECT_EQ(port.size(), 0u);  // handed to the waiter, never queued
  e.Run();
  EXPECT_EQ(got, std::vector<int>{5});
}

Task AcquireN(Semaphore& sem, int n, std::vector<Time>* at, Engine& e) {
  for (int i = 0; i < n; ++i) {
    co_await sem.Acquire();
    at->push_back(e.Now());
  }
}

TEST(Semaphore, CountsDown) {
  Engine e;
  Semaphore sem(e, 2);
  std::vector<Time> at;
  Task t = AcquireN(sem, 2, &at, e);
  EXPECT_TRUE(t.done());
  EXPECT_EQ(sem.count(), 0);
}

TEST(Semaphore, BlocksAtZeroAndWakesOnRelease) {
  Engine e;
  Semaphore sem(e, 0);
  std::vector<Time> at;
  Task t = AcquireN(sem, 1, &at, e);
  EXPECT_FALSE(t.done());
  e.ScheduleAt(Milliseconds(42), [&] { sem.Release(); });
  e.Run();
  EXPECT_TRUE(t.done());
  ASSERT_EQ(at.size(), 1u);
  EXPECT_EQ(at[0], Milliseconds(42));
}

TEST(Semaphore, ReleaseHandsToWaiterNotCount) {
  Engine e;
  Semaphore sem(e, 0);
  std::vector<Time> at;
  Task t = AcquireN(sem, 1, &at, e);
  sem.Release();
  EXPECT_EQ(sem.count(), 0);  // the unit went to the waiter
  e.Run();
  EXPECT_TRUE(t.done());
}

TEST(Semaphore, TryAcquire) {
  Engine e;
  Semaphore sem(e, 1);
  EXPECT_TRUE(sem.TryAcquire());
  EXPECT_FALSE(sem.TryAcquire());
  sem.Release();
  EXPECT_TRUE(sem.TryAcquire());
}

}  // namespace
}  // namespace crsim
