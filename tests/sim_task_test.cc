#include "src/sim/task.h"

#include <gtest/gtest.h>

#include "src/base/time_units.h"
#include "src/sim/awaitables.h"
#include "src/sim/engine.h"

namespace crsim {
namespace {

using crbase::Milliseconds;

Task Nop(bool* ran) {
  *ran = true;
  co_return;
}

TEST(Task, RunsEagerlyToCompletion) {
  bool ran = false;
  Task t = Nop(&ran);
  EXPECT_TRUE(ran);
  EXPECT_TRUE(t.done());
}

Task SleepTwice(Engine& e, std::vector<Time>* wakeups) {
  co_await Sleep(e, Milliseconds(10));
  wakeups->push_back(e.Now());
  co_await Sleep(e, Milliseconds(15));
  wakeups->push_back(e.Now());
}

TEST(Task, SleepSuspendsForVirtualTime) {
  Engine e;
  std::vector<Time> wakeups;
  Task t = SleepTwice(e, &wakeups);
  EXPECT_FALSE(t.done());
  EXPECT_TRUE(wakeups.empty());
  e.Run();
  EXPECT_TRUE(t.done());
  ASSERT_EQ(wakeups.size(), 2u);
  EXPECT_EQ(wakeups[0], Milliseconds(10));
  EXPECT_EQ(wakeups[1], Milliseconds(25));
}

TEST(Task, ZeroSleepDoesNotSuspend) {
  Engine e;
  std::vector<Time> wakeups;
  Task t = [](Engine& eng, std::vector<Time>* w) -> Task {
    co_await Sleep(eng, 0);
    w->push_back(eng.Now());
  }(e, &wakeups);
  EXPECT_TRUE(t.done());
  EXPECT_EQ(wakeups.size(), 1u);
}

Task Child(Engine& e, int* state) {
  co_await Sleep(e, Milliseconds(5));
  *state = 1;
}

Task Parent(Engine& e, int* state, Time* joined_at) {
  Task child = Child(e, state);
  co_await child;
  *joined_at = e.Now();
}

TEST(Task, AwaitingTaskJoinsIt) {
  Engine e;
  int state = 0;
  Time joined_at = -1;
  Task p = Parent(e, &state, &joined_at);
  e.Run();
  EXPECT_EQ(state, 1);
  EXPECT_EQ(joined_at, Milliseconds(5));
  EXPECT_TRUE(p.done());
}

TEST(Task, AwaitingFinishedTaskCompletesImmediately) {
  Engine e;
  bool ran = false;
  Task finished = Nop(&ran);
  bool after = false;
  Task waiter = [](const Task& t, bool* done) -> Task {
    co_await t;
    *done = true;
  }(finished, &after);
  EXPECT_TRUE(after);
  EXPECT_TRUE(waiter.done());
}

TEST(Task, DetachedTaskKeepsRunning) {
  Engine e;
  std::vector<Time> wakeups;
  {
    Task t = SleepTwice(e, &wakeups);
    // t destroyed while suspended: the coroutine must continue detached.
  }
  e.Run();
  ASSERT_EQ(wakeups.size(), 2u);
  EXPECT_EQ(wakeups[1], Milliseconds(25));
}

TEST(Task, MoveTransfersOwnership) {
  Engine e;
  std::vector<Time> wakeups;
  Task a = SleepTwice(e, &wakeups);
  Task b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): testing moved-from state
  EXPECT_TRUE(b.valid());
  e.Run();
  EXPECT_TRUE(b.done());
}

TEST(Gate, BlocksUntilOpened) {
  Engine e;
  Gate gate(e);
  std::vector<Time> passed;
  auto waiter = [](Engine& eng, Gate& g, std::vector<Time>* out) -> Task {
    co_await g.Wait();
    out->push_back(eng.Now());
  };
  Task t1 = waiter(e, gate, &passed);
  Task t2 = waiter(e, gate, &passed);
  e.ScheduleAt(Milliseconds(30), [&] { gate.Open(); });
  e.Run();
  ASSERT_EQ(passed.size(), 2u);
  EXPECT_EQ(passed[0], Milliseconds(30));
  EXPECT_EQ(passed[1], Milliseconds(30));
  EXPECT_TRUE(t1.done());
  EXPECT_TRUE(t2.done());
}

TEST(Gate, OpenGatePassesImmediately) {
  Engine e;
  Gate gate(e, /*open=*/true);
  bool passed = false;
  Task t = [](Gate& g, bool* out) -> Task {
    co_await g.Wait();
    *out = true;
  }(gate, &passed);
  EXPECT_TRUE(passed);
  EXPECT_TRUE(t.done());
}

}  // namespace
}  // namespace crsim
