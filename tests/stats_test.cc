#include "src/stats/summary.h"

#include <gtest/gtest.h>

#include "src/stats/table.h"

namespace crstats {
namespace {

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Summary, BasicMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
}

TEST(Summary, SingleValue) {
  Summary s;
  s.Add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Samples, Percentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(static_cast<double>(i));
  }
  EXPECT_NEAR(s.Median(), 50.5, 0.01);
  EXPECT_NEAR(s.Percentile(0), 1.0, 0.01);
  EXPECT_NEAR(s.Percentile(100), 100.0, 0.01);
  EXPECT_NEAR(s.Percentile(90), 90.1, 0.2);
}

TEST(Samples, EmptyPercentileIsZero) {
  Samples s;
  EXPECT_EQ(s.Median(), 0.0);
}

TEST(Table, AlignsColumns) {
  Table t({"streams", "throughput"});
  t.Cell(static_cast<std::int64_t>(1)).Cell(0.19, 2);
  t.EndRow();
  t.Cell(static_cast<std::int64_t>(25)).Cell(3.61, 2);
  t.EndRow();
  const std::string out = t.ToString();
  EXPECT_NE(out.find("streams  throughput"), std::string::npos);
  EXPECT_NE(out.find("-------  ----------"), std::string::npos);
  EXPECT_NE(out.find("25       3.61"), std::string::npos);
}

TEST(Table, CsvMode) {
  Table t({"a", "b"});
  t.SetCsv(true);
  t.Cell("x").Cell(static_cast<std::int64_t>(7));
  t.EndRow();
  EXPECT_EQ(t.ToString(), "a,b\nx,7\n");
}

}  // namespace
}  // namespace crstats
