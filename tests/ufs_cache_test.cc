#include "src/ufs/buffer_cache.h"

#include <gtest/gtest.h>

namespace crufs {
namespace {

TEST(BufferCache, MissThenHit) {
  BufferCache cache(4);
  EXPECT_FALSE(cache.Lookup(10));
  cache.Insert(10);
  EXPECT_TRUE(cache.Lookup(10));
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.5);
}

TEST(BufferCache, EvictsLeastRecentlyUsed) {
  BufferCache cache(3);
  cache.Insert(1);
  cache.Insert(2);
  cache.Insert(3);
  EXPECT_TRUE(cache.Lookup(1));  // 1 becomes most recent
  cache.Insert(4);               // evicts 2
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_TRUE(cache.Contains(4));
  EXPECT_EQ(cache.evictions(), 1);
}

TEST(BufferCache, InsertExistingRefreshesRecency) {
  BufferCache cache(2);
  cache.Insert(1);
  cache.Insert(2);
  cache.Insert(1);  // refresh, no eviction
  EXPECT_EQ(cache.size(), 2);
  cache.Insert(3);  // evicts 2, not 1
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
}

TEST(BufferCache, ContainsDoesNotPerturbStats) {
  BufferCache cache(2);
  cache.Insert(1);
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(9));
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_EQ(cache.misses(), 0);
}

TEST(BufferCache, SizeNeverExceedsCapacity) {
  BufferCache cache(8);
  for (int i = 0; i < 100; ++i) {
    cache.Insert(i);
    EXPECT_LE(cache.size(), 8);
  }
  EXPECT_EQ(cache.size(), 8);
}

TEST(BufferCache, ClearEmptiesButKeepsStats) {
  BufferCache cache(4);
  cache.Insert(1);
  EXPECT_TRUE(cache.Lookup(1));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0);
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_EQ(cache.hits(), 1);
}

}  // namespace
}  // namespace crufs
