// Hierarchical namespace tests.

#include "src/ufs/ufs.h"

#include <gtest/gtest.h>

namespace crufs {
namespace {

TEST(UfsDirectory, RootExistsAndListsCreatedFiles) {
  Ufs fs;
  EXPECT_TRUE(fs.DirExists(""));
  ASSERT_TRUE(fs.Create("a.mpg").ok());
  ASSERT_TRUE(fs.Create("b.mpg").ok());
  auto children = fs.List("");
  ASSERT_TRUE(children.ok());
  EXPECT_EQ(*children, (std::vector<std::string>{"a.mpg", "b.mpg"}));
}

TEST(UfsDirectory, MkdirAndNestedCreate) {
  Ufs fs;
  ASSERT_TRUE(fs.Mkdir("movies").ok());
  ASSERT_TRUE(fs.Mkdir("movies/japan").ok());
  auto created = fs.Create("movies/japan/kyoto.mpg");
  ASSERT_TRUE(created.ok());
  auto found = fs.Lookup("movies/japan/kyoto.mpg");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, *created);

  auto root = fs.List("");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(*root, std::vector<std::string>{"movies/"});
  auto japan = fs.List("movies/japan");
  ASSERT_TRUE(japan.ok());
  EXPECT_EQ(*japan, std::vector<std::string>{"kyoto.mpg"});
}

TEST(UfsDirectory, CreateRequiresParent) {
  Ufs fs;
  auto result = fs.Create("nosuchdir/file");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), crbase::StatusCode::kNotFound);
  EXPECT_FALSE(fs.Mkdir("a/b").ok());  // parent "a" missing too
}

TEST(UfsDirectory, PathValidation) {
  Ufs fs;
  EXPECT_EQ(fs.Create("/leading").status().code(), crbase::StatusCode::kInvalidArgument);
  EXPECT_EQ(fs.Create("trailing/").status().code(), crbase::StatusCode::kInvalidArgument);
  EXPECT_EQ(fs.Create("a//b").status().code(), crbase::StatusCode::kInvalidArgument);
  EXPECT_EQ(fs.Create("a/../b").status().code(), crbase::StatusCode::kInvalidArgument);
  EXPECT_EQ(fs.Mkdir(".").code(), crbase::StatusCode::kInvalidArgument);
}

TEST(UfsDirectory, NameCollisionsAcrossKinds) {
  Ufs fs;
  ASSERT_TRUE(fs.Mkdir("x").ok());
  EXPECT_EQ(fs.Create("x").status().code(), crbase::StatusCode::kAlreadyExists);
  ASSERT_TRUE(fs.Create("y").ok());
  EXPECT_EQ(fs.Mkdir("y").code(), crbase::StatusCode::kAlreadyExists);
}

TEST(UfsDirectory, RmdirOnlyWhenEmpty) {
  Ufs fs;
  ASSERT_TRUE(fs.Mkdir("d").ok());
  ASSERT_TRUE(fs.Create("d/f").ok());
  EXPECT_EQ(fs.Rmdir("d").code(), crbase::StatusCode::kFailedPrecondition);
  ASSERT_TRUE(fs.Remove("d/f").ok());
  EXPECT_TRUE(fs.Rmdir("d").ok());
  EXPECT_FALSE(fs.DirExists("d"));
  EXPECT_EQ(fs.Rmdir("d").code(), crbase::StatusCode::kNotFound);
  EXPECT_EQ(fs.Rmdir("").code(), crbase::StatusCode::kInvalidArgument);
}

TEST(UfsDirectory, ListDistinguishesFilesAndSubdirs) {
  Ufs fs;
  ASSERT_TRUE(fs.Mkdir("d").ok());
  ASSERT_TRUE(fs.Mkdir("d/sub").ok());
  ASSERT_TRUE(fs.Create("d/file").ok());
  auto children = fs.List("d");
  ASSERT_TRUE(children.ok());
  EXPECT_EQ(*children, (std::vector<std::string>{"file", "sub/"}));
  EXPECT_FALSE(fs.List("nosuch").ok());
}

TEST(UfsDirectory, ListDoesNotLeakGrandchildren) {
  Ufs fs;
  ASSERT_TRUE(fs.Mkdir("a").ok());
  ASSERT_TRUE(fs.Mkdir("a/b").ok());
  ASSERT_TRUE(fs.Create("a/b/deep").ok());
  auto children = fs.List("a");
  ASSERT_TRUE(children.ok());
  EXPECT_EQ(*children, std::vector<std::string>{"b/"});
}

}  // namespace
}  // namespace crufs
