// File-system layout, allocation policy, and extent tests.

#include "src/ufs/ufs.h"

#include <gtest/gtest.h>

#include "src/base/bytes.h"
#include "src/base/random.h"

namespace crufs {
namespace {

using crbase::kKiB;
using crbase::kMiB;

Ufs MakeTuned() {
  Ufs::Options options;
  options.policy = TunedPolicy();
  return Ufs(options);
}

Ufs MakeStock() {
  Ufs::Options options;
  options.policy = StockPolicy();
  return Ufs(options);
}

TEST(Ufs, GeometryDerivedSizes) {
  Ufs fs = MakeTuned();
  EXPECT_EQ(fs.block_size(), 8 * kKiB);
  EXPECT_EQ(fs.sectors_per_block(), 16);
  // ~2 GB disk in 8 KiB blocks.
  EXPECT_NEAR(static_cast<double>(fs.total_blocks()) * 8 * kKiB / crbase::kGiB, 2.0, 0.1);
  EXPECT_EQ(fs.free_blocks(), fs.total_blocks());
  EXPECT_GT(fs.groups(), 100);
}

TEST(Ufs, CreateLookupRemove) {
  Ufs fs = MakeTuned();
  auto created = fs.Create("movie.mpg");
  ASSERT_TRUE(created.ok());
  auto found = fs.Lookup("movie.mpg");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, *created);
  EXPECT_EQ(fs.inode(*found).name, "movie.mpg");

  EXPECT_FALSE(fs.Create("movie.mpg").ok());  // duplicate
  EXPECT_FALSE(fs.Lookup("absent").ok());
  EXPECT_TRUE(fs.Remove("movie.mpg").ok());
  EXPECT_FALSE(fs.Lookup("movie.mpg").ok());
  EXPECT_FALSE(fs.Remove("movie.mpg").ok());
}

TEST(Ufs, CreateRejectsEmptyName) {
  Ufs fs = MakeTuned();
  EXPECT_FALSE(fs.Create("").ok());
}

TEST(Ufs, AppendAllocatesBlocks) {
  Ufs fs = MakeTuned();
  InodeNumber n = *fs.Create("f");
  ASSERT_TRUE(fs.Append(n, 100 * kKiB).ok());
  const Inode& inode = fs.inode(n);
  EXPECT_EQ(inode.size_bytes, 100 * kKiB);
  EXPECT_EQ(inode.block_map.size(), 13u);  // ceil(100/8)
  EXPECT_EQ(fs.free_blocks(), fs.total_blocks() - 13);
}

TEST(Ufs, TunedPolicyIsFullyContiguous) {
  Ufs fs = MakeTuned();
  InodeNumber n = *fs.Create("movie");
  ASSERT_TRUE(fs.Append(n, 64 * kMiB).ok());
  EXPECT_DOUBLE_EQ(fs.ContiguityOf(n), 1.0);
}

TEST(Ufs, StockPolicyScattersLargeFiles) {
  Ufs fs = MakeStock();
  InodeNumber n = *fs.Create("movie");
  ASSERT_TRUE(fs.Append(n, 64 * kMiB).ok());
  const double contiguity = fs.ContiguityOf(n);
  EXPECT_LT(contiguity, 0.95);
  EXPECT_GT(contiguity, 0.5);  // still mostly runs, as FFS produces
}

TEST(Ufs, InterleavedWritersStayContiguousPerFile) {
  // Two files appended alternately: the tuned allocator must still keep
  // each file's runs long (this is what contiguous preallocation policy
  // buys; a naive next-free allocator would interleave them block by
  // block).
  Ufs fs = MakeTuned();
  InodeNumber a = *fs.Create("a");
  InodeNumber b = *fs.Create("b");
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(fs.Append(a, 64 * kKiB).ok());
    ASSERT_TRUE(fs.Append(b, 64 * kKiB).ok());
  }
  EXPECT_GT(fs.ContiguityOf(a), 0.85);
  EXPECT_GT(fs.ContiguityOf(b), 0.85);
}

TEST(Ufs, RemoveFreesBlocks) {
  Ufs fs = MakeTuned();
  InodeNumber n = *fs.Create("f");
  ASSERT_TRUE(fs.Append(n, kMiB).ok());
  const std::int64_t free_before = fs.free_blocks();
  ASSERT_TRUE(fs.Remove("f").ok());
  EXPECT_EQ(fs.free_blocks(), free_before + kMiB / fs.block_size());
}

TEST(Ufs, PreallocateContiguousIsOneRun) {
  Ufs fs = MakeTuned();
  InodeNumber filler = *fs.Create("filler");
  ASSERT_TRUE(fs.Append(filler, 10 * kMiB).ok());
  InodeNumber n = *fs.Create("rtwrite");
  ASSERT_TRUE(fs.PreallocateContiguous(n, 32 * kMiB).ok());
  EXPECT_DOUBLE_EQ(fs.ContiguityOf(n), 1.0);
  EXPECT_EQ(fs.inode(n).size_bytes, 32 * kMiB);
}

TEST(Ufs, PreallocateRequiresEmptyFile) {
  Ufs fs = MakeTuned();
  InodeNumber n = *fs.Create("f");
  ASSERT_TRUE(fs.Append(n, kMiB).ok());
  EXPECT_EQ(fs.PreallocateContiguous(n, kMiB).code(), crbase::StatusCode::kFailedPrecondition);
}

TEST(Ufs, FragmentDestroysContiguity) {
  Ufs fs = MakeTuned();
  InodeNumber n = *fs.Create("edited");
  ASSERT_TRUE(fs.Append(n, 32 * kMiB).ok());
  ASSERT_DOUBLE_EQ(fs.ContiguityOf(n), 1.0);
  const std::int64_t free_before = fs.free_blocks();
  crbase::Rng rng(1234);
  ASSERT_TRUE(fs.Fragment(n, rng).ok());
  EXPECT_EQ(fs.free_blocks(), free_before);  // conserves space
  EXPECT_LT(fs.ContiguityOf(n), 0.05);
}

TEST(Ufs, RearrangeRestoresContiguity) {
  // §3.2 problem 3 and its remedy: fragment a file, then rearrange it.
  Ufs fs = MakeTuned();
  InodeNumber keeper = *fs.Create("keeper");
  ASSERT_TRUE(fs.Append(keeper, 8 * kMiB).ok());
  InodeNumber n = *fs.Create("edited");
  ASSERT_TRUE(fs.Append(n, 16 * kMiB).ok());
  crbase::Rng rng(321);
  ASSERT_TRUE(fs.Fragment(n, rng).ok());
  ASSERT_LT(fs.ContiguityOf(n), 0.1);
  const std::int64_t free_before = fs.free_blocks();

  ASSERT_TRUE(fs.Rearrange(n).ok());
  EXPECT_GT(fs.ContiguityOf(n), 0.99);
  EXPECT_EQ(fs.free_blocks(), free_before);     // conserves space
  EXPECT_EQ(fs.inode(n).size_bytes, 16 * kMiB);  // conserves content extent
  // The other file is untouched.
  EXPECT_DOUBLE_EQ(fs.ContiguityOf(keeper), 1.0);
}

TEST(Ufs, RearrangeEmptyFileIsNoop) {
  Ufs fs = MakeTuned();
  InodeNumber n = *fs.Create("empty");
  EXPECT_TRUE(fs.Rearrange(n).ok());
  EXPECT_FALSE(fs.Rearrange(999).ok());
}

TEST(Ufs, BlockLbaIsSectorAddress) {
  Ufs fs = MakeTuned();
  InodeNumber n = *fs.Create("f");
  ASSERT_TRUE(fs.Append(n, 64 * kKiB).ok());
  auto lba0 = fs.BlockLba(n, 0);
  auto lba1 = fs.BlockLba(n, 1);
  ASSERT_TRUE(lba0.ok());
  ASSERT_TRUE(lba1.ok());
  EXPECT_EQ(*lba1 - *lba0, fs.sectors_per_block());
  EXPECT_FALSE(fs.BlockLba(n, 100).ok());
}

TEST(Ufs, GetExtentsCoalescesContiguousBlocks) {
  Ufs fs = MakeTuned();
  InodeNumber n = *fs.Create("movie");
  ASSERT_TRUE(fs.Append(n, kMiB).ok());
  auto extents = fs.GetExtents(n, 0, kMiB, 256 * kKiB);
  ASSERT_TRUE(extents.ok());
  // 1 MiB contiguous, capped at 256 KiB per extent => 4 extents.
  ASSERT_EQ(extents->size(), 4u);
  for (const Extent& e : *extents) {
    EXPECT_EQ(e.bytes(), 256 * kKiB);
  }
  EXPECT_EQ((*extents)[1].lba, (*extents)[0].lba + (*extents)[0].sectors);
}

TEST(Ufs, GetExtentsWidensToBlockBoundaries) {
  Ufs fs = MakeTuned();
  InodeNumber n = *fs.Create("f");
  ASSERT_TRUE(fs.Append(n, 64 * kKiB).ok());
  // 1 byte spanning a block boundary region still reads whole blocks.
  auto extents = fs.GetExtents(n, 8 * kKiB - 1, 2, 256 * kKiB);
  ASSERT_TRUE(extents.ok());
  std::int64_t total = 0;
  for (const Extent& e : *extents) {
    total += e.bytes();
  }
  EXPECT_EQ(total, 2 * fs.block_size());
}

TEST(Ufs, GetExtentsOnFragmentedFileIsPerBlock) {
  Ufs fs = MakeTuned();
  InodeNumber n = *fs.Create("edited");
  ASSERT_TRUE(fs.Append(n, 256 * kKiB).ok());
  crbase::Rng rng(99);
  ASSERT_TRUE(fs.Fragment(n, rng).ok());
  auto extents = fs.GetExtents(n, 0, 256 * kKiB, 256 * kKiB);
  ASSERT_TRUE(extents.ok());
  // 32 blocks, essentially all discontiguous.
  EXPECT_GE(extents->size(), 30u);
}

TEST(Ufs, GetExtentsRejectsBadRanges) {
  Ufs fs = MakeTuned();
  InodeNumber n = *fs.Create("f");
  ASSERT_TRUE(fs.Append(n, 64 * kKiB).ok());
  EXPECT_FALSE(fs.GetExtents(n, 0, 128 * kKiB, 256 * kKiB).ok());  // beyond EOF
  EXPECT_FALSE(fs.GetExtents(n, -1, 8, 256 * kKiB).ok());
  EXPECT_FALSE(fs.GetExtents(n, 0, 8, 4 * kKiB).ok());  // extent < block
}

TEST(Ufs, FillsUpAndReportsExhaustion) {
  // A small-group config exercised to exhaustion.
  Ufs fs = MakeTuned();
  InodeNumber n = *fs.Create("huge");
  EXPECT_EQ(fs.Append(n, 4 * crbase::kGiB).code(), crbase::StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace crufs
