// Unix server read-path behaviour: clustering, caching, FIFO service, and
// the priority-inversion structure the paper's baseline suffers from.

#include "src/ufs/unix_server.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/base/bytes.h"
#include "src/disk/device.h"
#include "src/disk/driver.h"
#include "src/base/time_units.h"

namespace crufs {
namespace {

using crbase::kKiB;
using crbase::kMiB;
using crbase::Milliseconds;

struct Rig {
  crrt::Kernel kernel;
  crdisk::DiskDevice device;
  crdisk::DiskDriver driver;
  Ufs fs;
  UnixServer server;

  Rig()
      : device(kernel.engine(),
               [] {
                 crdisk::DiskDevice::Options o;
                 o.geometry = crdisk::St32550nGeometry();
                 return o;
               }()),
        driver(kernel.engine(), device),
        fs(),
        server(kernel, driver, fs) {
    server.Start();
  }

  InodeNumber MakeFile(const std::string& name, std::int64_t bytes) {
    InodeNumber n = *fs.Create(name);
    CRAS_CHECK_OK(fs.Append(n, bytes));
    return n;
  }
};

TEST(UnixServer, ReadCompletesAndFillsCache) {
  Rig rig;
  InodeNumber n = rig.MakeFile("f", kMiB);
  crbase::Status result = crbase::InternalError("not run");
  crsim::Task t = [](Rig& r, InodeNumber inode, crbase::Status* out) -> crsim::Task {
    *out = co_await r.server.Read(inode, 0, 64 * kKiB);
  }(rig, n, &result);
  rig.kernel.engine().Run();
  EXPECT_TRUE(result.ok()) << result.ToString();
  // 64 KiB = 8 blocks = exactly one clustered disk read.
  EXPECT_EQ(rig.server.stats().disk_reads, 1);
  EXPECT_EQ(rig.server.stats().blocks_from_disk, 8);
}

TEST(UnixServer, CachedRereadDoesNoIo) {
  Rig rig;
  InodeNumber n = rig.MakeFile("f", kMiB);
  crsim::Task t = [](Rig& r, InodeNumber inode) -> crsim::Task {
    (void)co_await r.server.Read(inode, 0, 64 * kKiB);
    (void)co_await r.server.Read(inode, 0, 64 * kKiB);
  }(rig, n);
  rig.kernel.engine().Run();
  EXPECT_EQ(rig.server.stats().disk_reads, 1);
  EXPECT_GT(rig.server.cache().hits(), 0);
}

TEST(UnixServer, ReadAheadServesSequentialAccess) {
  Rig rig;
  InodeNumber n = rig.MakeFile("f", kMiB);
  // Read 8 KiB at a time sequentially: only every 8th block misses.
  crsim::Task t = [](Rig& r, InodeNumber inode) -> crsim::Task {
    for (std::int64_t off = 0; off < 512 * kKiB; off += 8 * kKiB) {
      (void)co_await r.server.Read(inode, off, 8 * kKiB);
    }
  }(rig, n);
  rig.kernel.engine().Run();
  EXPECT_EQ(rig.server.stats().disk_reads, 8);  // 64 blocks / 8-block clusters
}

TEST(UnixServer, ReadBeyondEofFails) {
  Rig rig;
  InodeNumber n = rig.MakeFile("f", 16 * kKiB);
  crbase::Status result;
  crsim::Task t = [](Rig& r, InodeNumber inode, crbase::Status* out) -> crsim::Task {
    *out = co_await r.server.Read(inode, 8 * kKiB, 16 * kKiB);
  }(rig, n, &result);
  rig.kernel.engine().Run();
  EXPECT_EQ(result.code(), crbase::StatusCode::kOutOfRange);
}

TEST(UnixServer, ZeroLengthReadSucceeds) {
  Rig rig;
  InodeNumber n = rig.MakeFile("f", 16 * kKiB);
  crbase::Status result = crbase::InternalError("not run");
  crsim::Task t = [](Rig& r, InodeNumber inode, crbase::Status* out) -> crsim::Task {
    *out = co_await r.server.Read(inode, 0, 0);
  }(rig, n, &result);
  rig.kernel.engine().Run();
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(rig.server.stats().disk_reads, 0);
}

TEST(UnixServer, RequestsServedInArrivalOrder) {
  // The priority-inversion structure: a request that arrives after two
  // large background reads waits for both, regardless of the priority of
  // the thread that issued it.
  Rig rig;
  InodeNumber big = rig.MakeFile("big", 8 * kMiB);
  InodeNumber small = rig.MakeFile("small", 8 * kKiB);
  std::vector<std::string> completions;
  auto reader = [](Rig& r, InodeNumber inode, std::int64_t len, std::string tag,
                   std::vector<std::string>* log) -> crsim::Task {
    (void)co_await r.server.Read(inode, 0, len);
    log->push_back(std::move(tag));
  };
  crsim::Task bg1 = reader(rig, big, 2 * kMiB, "bg1", &completions);
  crsim::Task bg2 = reader(rig, big, 2 * kMiB, "bg2", &completions);
  crsim::Task player = reader(rig, small, 8 * kKiB, "player", &completions);
  rig.kernel.engine().Run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[2], "player");
}

TEST(UnixServer, FragmentedFileReadsSlower) {
  auto measure = [](bool fragment) {
    Rig rig;
    InodeNumber n = rig.MakeFile("f", 4 * kMiB);
    if (fragment) {
      crbase::Rng rng(5);
      CRAS_CHECK_OK(rig.fs.Fragment(n, rng));
    }
    crsim::Task t = [](Rig& r, InodeNumber inode) -> crsim::Task {
      (void)co_await r.server.Read(inode, 0, 4 * kMiB);
    }(rig, n);
    rig.kernel.engine().Run();
    return rig.kernel.Now();
  };
  const crbase::Time contiguous = measure(false);
  const crbase::Time fragmented = measure(true);
  EXPECT_GT(fragmented, 3 * contiguous);
}

TEST(UnixServer, StatsTrackBusyTime) {
  Rig rig;
  InodeNumber n = rig.MakeFile("f", kMiB);
  crsim::Task t = [](Rig& r, InodeNumber inode) -> crsim::Task {
    (void)co_await r.server.Read(inode, 0, kMiB);
  }(rig, n);
  rig.kernel.engine().Run();
  EXPECT_EQ(rig.server.stats().requests, 1);
  EXPECT_EQ(rig.server.stats().blocks_requested, 128);
  EXPECT_GT(rig.server.stats().busy_time, Milliseconds(10));
}

}  // namespace
}  // namespace crufs
