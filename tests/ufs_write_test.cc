// Unix-server write-path tests (the editing workloads of §3.2).

#include <gtest/gtest.h>

#include "src/base/bytes.h"
#include "src/core/player.h"
#include "src/core/testbed.h"
#include "src/media/media_file.h"
#include "src/ufs/unix_server.h"

namespace crufs {
namespace {

using crbase::kKiB;
using crbase::Milliseconds;
using crbase::Seconds;

TEST(UnixServerWrite, WriteWithinFileIssuesDiskWrites) {
  cras::Testbed bed;
  bed.StartServers();
  InodeNumber n = *bed.fs.Create("doc");
  ASSERT_TRUE(bed.fs.Append(n, 256 * kKiB).ok());
  crbase::Status result = crbase::InternalError("not run");
  crsim::Task t = bed.kernel.Spawn(
      "writer", crrt::kPriorityClient, [&](crrt::ThreadContext&) -> crsim::Task {
        result = co_await bed.unix_server.Write(n, 0, 64 * kKiB);
      });
  bed.engine().RunFor(Seconds(1));
  ASSERT_TRUE(result.ok()) << result.ToString();
  // 64 KiB contiguous = one clustered disk write.
  EXPECT_EQ(bed.unix_server.stats().disk_writes, 1);
  EXPECT_EQ(bed.unix_server.stats().blocks_to_disk, 8);
}

TEST(UnixServerWrite, WriteExtendsFile) {
  cras::Testbed bed;
  bed.StartServers();
  InodeNumber n = *bed.fs.Create("doc");
  ASSERT_TRUE(bed.fs.Append(n, 8 * kKiB).ok());
  crbase::Status result;
  crsim::Task t = bed.kernel.Spawn(
      "writer", crrt::kPriorityClient, [&](crrt::ThreadContext&) -> crsim::Task {
        // Append 40 KiB past EOF.
        result = co_await bed.unix_server.Write(n, 8 * kKiB, 40 * kKiB);
      });
  bed.engine().RunFor(Seconds(1));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(bed.fs.inode(n).size_bytes, 48 * kKiB);
}

TEST(UnixServerWrite, WrittenBlocksAreCached) {
  cras::Testbed bed;
  bed.StartServers();
  InodeNumber n = *bed.fs.Create("doc");
  ASSERT_TRUE(bed.fs.Append(n, 64 * kKiB).ok());
  crsim::Task t = bed.kernel.Spawn(
      "rw", crrt::kPriorityClient, [&](crrt::ThreadContext&) -> crsim::Task {
        (void)co_await bed.unix_server.Write(n, 0, 64 * kKiB);
        (void)co_await bed.unix_server.Read(n, 0, 64 * kKiB);
      });
  bed.engine().RunFor(Seconds(1));
  // The read after the write is served entirely from cache.
  EXPECT_EQ(bed.unix_server.stats().disk_reads, 0);
  EXPECT_GT(bed.unix_server.cache().hits(), 0);
}

TEST(UnixServerWrite, ZeroLengthWriteSucceeds) {
  cras::Testbed bed;
  bed.StartServers();
  InodeNumber n = *bed.fs.Create("doc");
  ASSERT_TRUE(bed.fs.Append(n, 8 * kKiB).ok());
  crbase::Status result = crbase::InternalError("not run");
  crsim::Task t = bed.kernel.Spawn(
      "writer", crrt::kPriorityClient, [&](crrt::ThreadContext&) -> crsim::Task {
        result = co_await bed.unix_server.Write(n, 0, 0);
      });
  bed.engine().RunFor(Seconds(1));
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(bed.unix_server.stats().disk_writes, 0);
}

TEST(UnixServerWrite, EditorAndCrasCoexist) {
  // The paper's deployment story: the Unix file system handles editing
  // while CRAS plays back — same disk, same layout, different queues. An
  // editor rewriting a document must not disturb an active stream.
  cras::Testbed bed;
  bed.StartServers();
  auto movie = crmedia::WriteMpeg1File(bed.fs, "movie", Seconds(10));
  ASSERT_TRUE(movie.ok());
  InodeNumber doc = *bed.fs.Create("edit_target");
  ASSERT_TRUE(bed.fs.Append(doc, 4 * crbase::kMiB).ok());

  crsim::Task editor = bed.kernel.Spawn(
      "editor", crrt::kPriorityTimesharing, [&](crrt::ThreadContext& ctx) -> crsim::Task {
        crbase::Rng rng(5);
        for (;;) {
          const std::int64_t offset =
              static_cast<std::int64_t>(rng.NextBelow(3 * 1024)) * kKiB;
          (void)co_await bed.unix_server.Write(doc, offset, 64 * kKiB);
          co_await ctx.Sleep(Milliseconds(40));
        }
      });

  cras::PlayerStats stats;
  cras::PlayerOptions options;
  options.play_length = Seconds(8);
  crsim::Task player =
      cras::SpawnCrasPlayer(bed.kernel, bed.cras_server, *movie, options, &stats);
  bed.engine().RunFor(Seconds(12));

  EXPECT_GT(bed.unix_server.stats().disk_writes, 50);  // the editor was busy
  EXPECT_EQ(stats.frames_missed, 0);
  EXPECT_LE(stats.max_delay(), Milliseconds(2));
  EXPECT_EQ(bed.cras_server.stats().deadline_misses, 0);
}

}  // namespace
}  // namespace crufs
