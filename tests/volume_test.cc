// Striped volume: stripe-mapping properties, per-disk admission, multi-disk
// scaling, and single-disk regression parity with the classic rig.

#include "src/volume/striped_volume.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/random.h"
#include "src/core/player.h"
#include "src/core/testbed.h"
#include "src/media/media_file.h"
#include "src/volume/volume_admission.h"

namespace crvol {
namespace {

using crbase::kKiB;
using crbase::kMiB;
using crbase::Milliseconds;
using crbase::Seconds;

constexpr std::int64_t kStripeUnit = 256 * kKiB;

std::int64_t Uniform(crbase::Rng& rng, std::int64_t bound) {
  return static_cast<std::int64_t>(rng.NextBelow(static_cast<std::uint64_t>(bound)));
}

VolumeOptions SmallVolume(int disks) {
  VolumeOptions options;
  options.disks = disks;
  return options;
}

// ---------------------------------------------------------------------------
// Stripe mapping.

class StripeMapping : public ::testing::TestWithParam<int> {};

TEST_P(StripeMapping, MapRoundTripsThroughToLogical) {
  crsim::Engine engine;
  StripedVolume volume(engine, SmallVolume(GetParam()));
  const int n = volume.disks();
  const std::int64_t per_disk = volume.geometry().total_sectors();
  crbase::Rng rng(20260806);
  for (int i = 0; i < 10000; ++i) {
    const crdisk::Lba logical = Uniform(rng, volume.total_sectors());
    const StripedVolume::Segment s = volume.Map(logical);
    ASSERT_GE(s.disk, 0);
    ASSERT_LT(s.disk, n);
    ASSERT_GE(s.lba, 0);
    ASSERT_LT(s.lba, per_disk);
    ASSERT_EQ(volume.ToLogical(s.disk, s.lba), logical);
  }
}

TEST_P(StripeMapping, ConsecutiveUnitsRotateRoundRobin) {
  crsim::Engine engine;
  StripedVolume volume(engine, SmallVolume(GetParam()));
  const std::int64_t unit = volume.stripe_unit_sectors();
  for (std::int64_t u = 0; u + 1 < volume.total_sectors() / unit && u < 64; ++u) {
    const StripedVolume::Segment a = volume.Map(u * unit);
    EXPECT_EQ(a.disk, static_cast<int>(u % volume.disks()));
    // Unit-aligned physical address: units land back-to-back on their disk.
    EXPECT_EQ(a.lba, (u / volume.disks()) * unit);
  }
}

TEST_P(StripeMapping, MapRangeTilesTheRangeInLogicalOrder) {
  crsim::Engine engine;
  StripedVolume volume(engine, SmallVolume(GetParam()));
  crbase::Rng rng(414243);
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t sectors = 1 + Uniform(rng, 3 * volume.stripe_unit_sectors());
    const crdisk::Lba start = Uniform(rng, volume.total_sectors() - sectors);
    const std::vector<StripedVolume::Segment> segments = volume.MapRange(start, sectors);
    ASSERT_FALSE(segments.empty());
    crdisk::Lba cursor = start;
    for (const StripedVolume::Segment& s : segments) {
      ASSERT_GT(s.sectors, 0);
      // Each segment is the image of the next run of logical sectors, and is
      // physically contiguous on its disk (ToLogical is affine inside it).
      ASSERT_EQ(volume.ToLogical(s.disk, s.lba), cursor);
      ASSERT_EQ(volume.ToLogical(s.disk, s.lba + s.sectors - 1), cursor + s.sectors - 1);
      cursor += s.sectors;
    }
    ASSERT_EQ(cursor, start + sectors);
  }
}

TEST_P(StripeMapping, MaxReadSpansAtMostTwoSegments) {
  // The design invariant behind the 256 KiB stripe unit: one coalesced CRAS
  // read (<= 256 KiB) touches at most two disks, and a stripe-aligned one
  // touches exactly one.
  crsim::Engine engine;
  StripedVolume volume(engine, SmallVolume(GetParam()));
  const std::int64_t unit = volume.stripe_unit_sectors();
  crbase::Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t sectors = 1 + Uniform(rng, unit);
    const crdisk::Lba start = Uniform(rng, volume.total_sectors() - sectors);
    EXPECT_LE(volume.MapRange(start, sectors).size(), 2u);
    EXPECT_EQ(volume.MapRange((start / unit) * unit, sectors).size(), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Disks, StripeMapping, ::testing::Values(1, 2, 4, 8));

TEST(StripeMapping, SingleDiskIsTheIdentity) {
  crsim::Engine engine;
  StripedVolume volume(engine, SmallVolume(1));
  EXPECT_EQ(volume.total_sectors(), volume.geometry().total_sectors());
  crbase::Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const crdisk::Lba logical = Uniform(rng, volume.total_sectors());
    const StripedVolume::Segment s = volume.Map(logical);
    EXPECT_EQ(s.disk, 0);
    EXPECT_EQ(s.lba, logical);
  }
  // Any range maps to exactly one segment, however many stripe units long.
  const auto segments = volume.MapRange(12345, 10 * volume.stripe_unit_sectors());
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments.front().lba, 12345);
}

// ---------------------------------------------------------------------------
// Per-disk admission.

std::vector<cras::StreamDemand> Mpeg1Streams(int count) {
  return std::vector<cras::StreamDemand>(
      static_cast<std::size_t>(count),
      cras::StreamDemand{crmedia::kMpeg1BytesPerSec, 6250});
}

TEST(VolumeAdmission, SingleDiskReproducesThePaperModelExactly) {
  const cras::DiskParams params = cras::MeasuredSt32550nParams();
  const cras::AdmissionModel single(params, Milliseconds(500), 256 * kKiB);
  const VolumeAdmissionModel volume(params, 1, Milliseconds(500), 256 * kKiB, kStripeUnit);
  crbase::Rng rng(1234);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<cras::StreamDemand> streams;
    const int count = static_cast<int>(Uniform(rng, 20));
    for (int i = 0; i < count; ++i) {
      streams.push_back(cras::StreamDemand{1000.0 + static_cast<double>(Uniform(rng, 400000)),
                                           Uniform(rng, 200 * 1024)});
    }
    const cras::AdmissionEstimate expected = single.Evaluate(streams);
    const VolumeAdmissionModel::Estimate got = volume.Evaluate(streams);
    ASSERT_EQ(got.per_disk.size(), 1u);
    EXPECT_EQ(got.bytes, expected.bytes);
    EXPECT_EQ(got.buffer_bytes, expected.buffer_bytes);
    EXPECT_EQ(got.per_disk[0].requests, expected.requests);
    EXPECT_EQ(got.per_disk[0].overhead, expected.overhead);
    EXPECT_EQ(got.per_disk[0].transfer, expected.transfer);
    EXPECT_EQ(got.WorstIoTime(), expected.io_time());
    for (const std::int64_t budget : {std::int64_t{1} * kMiB, std::int64_t{12} * kMiB}) {
      EXPECT_EQ(volume.Admissible(streams, budget), single.Admissible(streams, budget));
    }
  }
}

TEST(VolumeAdmission, EveryDiskMustMeetItsDeadline) {
  // A mixed shelf: one healthy member and one modelled with a tenth of the
  // transfer rate (a degraded disk). The set below fits two healthy disks
  // comfortably but overruns the slow member's interval, so the volume as a
  // whole must reject it — admission is per disk, not aggregate.
  cras::DiskParams fast = cras::MeasuredSt32550nParams();
  cras::DiskParams slow = fast;
  slow.transfer_rate = fast.transfer_rate / 10.0;

  const std::vector<cras::StreamDemand> streams = Mpeg1Streams(10);
  const std::int64_t budget = 64 * kMiB;

  const VolumeAdmissionModel healthy(fast, 2, Milliseconds(500), 256 * kKiB, kStripeUnit);
  EXPECT_TRUE(healthy.Admissible(streams, budget));

  const VolumeAdmissionModel degraded({fast, slow}, Milliseconds(500), 256 * kKiB,
                                      kStripeUnit);
  EXPECT_FALSE(degraded.Admissible(streams, budget));
  const VolumeAdmissionModel::Estimate estimate = degraded.Evaluate(streams);
  EXPECT_EQ(estimate.BottleneckDisk(), 1);
  EXPECT_GT(estimate.per_disk[1].io_time(), Milliseconds(500));
  EXPECT_LT(estimate.per_disk[0].io_time(), Milliseconds(500));
}

int MaxAdmitted(const VolumeAdmissionModel& model) {
  int n = 0;
  while (model.Admissible(Mpeg1Streams(n + 1), std::int64_t{1} << 30)) {
    ++n;
  }
  return n;
}

TEST(VolumeAdmission, CapacityScalesWithDisks) {
  const cras::DiskParams params = cras::MeasuredSt32550nParams();
  auto model = [&](int disks) {
    return VolumeAdmissionModel(params, disks, Milliseconds(500), 256 * kKiB, kStripeUnit);
  };
  const int n1 = MaxAdmitted(model(1));
  const int n2 = MaxAdmitted(model(2));
  const int n4 = MaxAdmitted(model(4));
  EXPECT_EQ(n1, 14);  // the paper's single-disk capacity at T = 0.5 s
  EXPECT_GE(n2, static_cast<int>(1.8 * n1));
  EXPECT_GE(n4, 3 * n1);
  // Still sublinear: the skew allowance charges each disk more than 1/N.
  EXPECT_LE(n2, 2 * n1);
  EXPECT_LE(n4, 4 * n1);
}

// ---------------------------------------------------------------------------
// Integration: the full rig over a striped volume.

crmedia::MediaFile MakeMpeg1(crufs::Ufs& fs, const std::string& name,
                             crbase::Duration length) {
  auto file = crmedia::WriteMpeg1File(fs, name, length);
  CRAS_CHECK(file.ok()) << file.status().ToString();
  return *file;
}

// Opens `count` streams, returning how many the server admitted.
template <typename Bed>
int CountAdmitted(Bed& bed, int count) {
  std::vector<crmedia::MediaFile> files;
  for (int i = 0; i < count; ++i) {
    files.push_back(MakeMpeg1(bed.fs, "movie" + std::to_string(i), Seconds(4)));
  }
  int accepted = 0;
  crsim::Task t = bed.kernel.Spawn(
      "opener", crrt::kPriorityClient, [&](crrt::ThreadContext&) -> crsim::Task {
        for (const auto& file : files) {
          cras::OpenParams params;
          params.inode = file.inode;
          params.index = file.index;
          auto opened = co_await bed.cras_server.Open(std::move(params));
          if (opened.ok()) {
            ++accepted;
          }
        }
      });
  bed.engine().RunFor(Seconds(2));
  return accepted;
}

TEST(VolumeIntegration, TwoDiskVolumeAdmitsNearlyTwiceTheStreams) {
  cras::Testbed single;
  single.StartServers();
  const int n1 = CountAdmitted(single, 40);
  EXPECT_EQ(n1, 14);

  cras::VolumeTestbedOptions options;
  options.volume.disks = 2;
  cras::VolumeTestbed striped(options);
  striped.StartServers();
  const int n2 = CountAdmitted(striped, 40);
  EXPECT_GE(n2, static_cast<int>(1.8 * n1));
  EXPECT_LE(n2, 2 * n1);
}

TEST(VolumeIntegration, TwoDiskVolumeStreamsTheDoubledLoadOnDeadline) {
  // 26 concurrent MPEG-1 streams — 1.86x the single-disk capacity of 14 —
  // all meeting every frame deadline on a 2-disk volume.
  constexpr int kStreams = 26;
  cras::VolumeTestbedOptions options;
  options.volume.disks = 2;
  cras::VolumeTestbed bed(options);
  bed.StartServers();

  std::vector<crmedia::MediaFile> files;
  std::vector<std::unique_ptr<cras::PlayerStats>> stats;
  std::vector<crsim::Task> players;
  for (int i = 0; i < kStreams; ++i) {
    files.push_back(MakeMpeg1(bed.fs, "movie" + std::to_string(i), Seconds(8)));
  }
  cras::PlayerOptions player_options;
  player_options.play_length = Seconds(6);
  for (int i = 0; i < kStreams; ++i) {
    player_options.start_delay = Milliseconds(37) * i;
    stats.push_back(std::make_unique<cras::PlayerStats>());
    players.push_back(cras::SpawnCrasPlayer(bed.kernel, bed.cras_server,
                                            files[static_cast<std::size_t>(i)],
                                            player_options, stats.back().get()));
  }
  bed.engine().RunFor(Seconds(12));
  for (const auto& s : stats) {
    ASSERT_FALSE(s->open_rejected);
    EXPECT_EQ(s->frames_missed, 0);
    // Client-side lateness stays within the jitter the buffers absorb. (At
    // 26 players the simulated CPU's client mob adds a few ms of wakeup
    // queueing on top of the single-disk tests' ~1 ms; that is client
    // contention, not retrieval lateness.)
    EXPECT_LE(s->max_delay(), Milliseconds(20));
  }
  // The server-side guarantee: every interval's fanned-out I/O landed
  // before the next boundary on both disks.
  EXPECT_EQ(bed.cras_server.stats().deadline_misses, 0);
  for (const cras::IntervalRecord& record : bed.cras_server.interval_records()) {
    EXPECT_TRUE(record.completed_by_deadline);
  }
  // The interval scheduler actually fanned out: both disks did real-time
  // work, and neither served everything.
  const std::int64_t disk0 = bed.volume.device(0).stats().sectors;
  const std::int64_t disk1 = bed.volume.device(1).stats().sectors;
  EXPECT_GT(disk0, 0);
  EXPECT_GT(disk1, 0);
}

TEST(VolumeIntegration, SingleDiskVolumeMatchesTheClassicRig) {
  // The N = 1 regression anchor: the same workload on the classic
  // single-disk testbed and on a one-disk striped volume produces identical
  // server-visible results (identity mapping, same allocator, same driver).
  auto run = [](auto& bed) {
    bed.StartServers();
    std::vector<crmedia::MediaFile> files;
    std::vector<std::unique_ptr<cras::PlayerStats>> stats;
    std::vector<crsim::Task> players;
    for (int i = 0; i < 6; ++i) {
      files.push_back(MakeMpeg1(bed.fs, "movie" + std::to_string(i), Seconds(6)));
    }
    cras::PlayerOptions options;
    options.play_length = Seconds(4);
    for (int i = 0; i < 6; ++i) {
      options.start_delay = Milliseconds(73) * i;
      stats.push_back(std::make_unique<cras::PlayerStats>());
      players.push_back(cras::SpawnCrasPlayer(bed.kernel, bed.cras_server,
                                              files[static_cast<std::size_t>(i)],
                                              options, stats.back().get()));
    }
    bed.engine().RunFor(Seconds(10));
    std::int64_t frames = 0;
    for (const auto& s : stats) {
      frames += s->frames_played;
      EXPECT_EQ(s->frames_missed, 0);
    }
    return std::tuple(bed.cras_server.stats().bytes_read,
                      bed.cras_server.stats().read_requests,
                      bed.cras_server.stats().deadline_misses, frames);
  };
  cras::Testbed classic;
  cras::VolumeTestbed volume;  // defaults: one disk
  EXPECT_EQ(run(classic), run(volume));
}

}  // namespace
}  // namespace crvol
